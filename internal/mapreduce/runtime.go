package mapreduce

import (
	"fmt"
	"sync"

	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/transport"
)

// Runtime executes an iterated Job across simulated worker nodes.
type Runtime[V any] struct {
	job Job[V]
	cfg Config

	tr     transport.Transport
	local  []int // partitions this process computes (all of them by default)
	values [][]V // per-worker owned values (worker main memory)
	tick   uint64

	ckpt      *checkpoint[V]
	recovered int // number of recoveries performed (observable in tests)
}

// New creates a runtime. It panics on structurally invalid configuration —
// these are programming errors, not runtime conditions.
func New[V any](job Job[V], cfg Config) *Runtime[V] {
	if cfg.Workers < 1 {
		panic("mapreduce: Workers must be ≥ 1")
	}
	if job.Map == nil || (job.Reduce1 == nil && job.Reduce1Early == nil) {
		panic("mapreduce: job needs Map and Reduce1 (or the Reduce1Early/Late pair)")
	}
	if (job.Reduce1Early == nil) != (job.Reduce1Late == nil) {
		panic("mapreduce: Reduce1Early and Reduce1Late must be set together")
	}
	if job.Reduce1Early != nil && job.Reduce2 != nil {
		panic("mapreduce: overlapped reduce1 is incompatible with Reduce2")
	}
	if cfg.EpochTicks <= 0 {
		cfg.EpochTicks = 10
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.NewMem(cfg.Workers)
	}
	if tr.N() != cfg.Workers {
		panic(fmt.Sprintf("mapreduce: transport has %d nodes, config wants %d workers", tr.N(), cfg.Workers))
	}
	local := cfg.LocalParts
	if local == nil {
		local = make([]int, cfg.Workers)
		for i := range local {
			local[i] = i
		}
	}
	for _, w := range local {
		if w < 0 || w >= cfg.Workers {
			panic(fmt.Sprintf("mapreduce: local partition %d out of range [0, %d)", w, cfg.Workers))
		}
	}
	return &Runtime[V]{
		job:    job,
		cfg:    cfg,
		tr:     tr,
		local:  local,
		values: make([][]V, cfg.Workers),
	}
}

// Load places initial values at a partition. Call before RunTicks.
func (r *Runtime[V]) Load(part int, vs []V) {
	r.values[part] = append(r.values[part], vs...)
}

// Values returns the values currently owned by a partition. The caller
// must not mutate concurrently with RunTicks.
func (r *Runtime[V]) Values(part int) []V { return r.values[part] }

// AllValues returns every worker's values appended in partition order.
func (r *Runtime[V]) AllValues() []V {
	var out []V
	for _, vs := range r.values {
		out = append(out, vs...)
	}
	return out
}

// Tick returns the number of completed ticks.
func (r *Runtime[V]) Tick() uint64 { return r.tick }

// Workers returns the worker count.
func (r *Runtime[V]) Workers() int { return r.cfg.Workers }

// Transport exposes the message layer (metrics, failure state).
func (r *Runtime[V]) Transport() transport.Transport { return r.tr }

// Recoveries returns how many checkpoint rollbacks have occurred.
func (r *Runtime[V]) Recoveries() int { return r.recovered }

// Reset rewinds the runtime to externally supplied state: the tick, the
// set of locally computed partitions, and their values (partitions absent
// from the map are cleared). The distributed worker uses it when the
// coordinator restores a run from its checkpoint — possibly with a
// different partition assignment than this process started with. The
// in-memory rollback point is dropped; the next RunTicks re-seeds it from
// the restored state. Must not be called while RunTicks is executing.
func (r *Runtime[V]) Reset(tick uint64, local []int, values map[int][]V) {
	r.tick = tick
	if local == nil {
		local = make([]int, r.cfg.Workers)
		for i := range local {
			local[i] = i
		}
	}
	r.local = local
	for i := range r.values {
		r.values[i] = values[i]
	}
	r.ckpt = nil
}

// OwnedCounts implements EpochView.
func (r *Runtime[V]) OwnedCounts() []int {
	counts := make([]int, len(r.values))
	for i, vs := range r.values {
		counts[i] = len(vs)
	}
	return counts
}

// RunTicks advances the computation n ticks (running any epoch-boundary
// work that falls inside). It returns the first unrecoverable error.
func (r *Runtime[V]) RunTicks(n int) error {
	// Always hold a tick-0 checkpoint when cloning is possible, so any
	// failure is recoverable.
	if r.ckpt == nil && r.job.Clone != nil {
		r.takeCheckpoint()
	}
	target := r.tick + uint64(n)
	epoch := 0
	for r.tick < target {
		// Inject scheduled crashes at tick start.
		for _, node := range r.cfg.Failures.At(r.tick) {
			r.tr.Fail(node)
			r.values[node] = nil // main memory lost
		}

		if err := r.runTick(); err != nil {
			return fmt.Errorf("mapreduce %s: tick %d: %w", r.job.Name, r.tick, err)
		}
		r.tick++

		if r.tick%uint64(r.cfg.EpochTicks) == 0 || r.tick == target {
			epoch++
			if err := r.epochBoundary(epoch); err != nil {
				return err
			}
		}
	}
	return nil
}

// epochBoundary is the master/worker synchronization point: external
// barrier hook, failure detection + recovery, coordinated checkpoint,
// application hook.
func (r *Runtime[V]) epochBoundary(epoch int) error {
	if r.cfg.Barrier != nil {
		if err := r.cfg.Barrier(r.tick); err != nil {
			return err
		}
	}
	// Failure detection: the master's epoch heartbeat notices dead
	// workers; recovery re-executes from the last coordinated checkpoint.
	anyFailed := false
	for n := 0; n < r.cfg.Workers; n++ {
		if r.tr.Failed(cluster.NodeID(n)) {
			anyFailed = true
		}
	}
	if anyFailed {
		if err := r.recover(); err != nil {
			return err
		}
		return nil // checkpoint/hooks re-run when re-executed ticks arrive here again
	}
	if r.cfg.CheckpointEveryEpochs > 0 && epoch%r.cfg.CheckpointEveryEpochs == 0 {
		r.takeCheckpoint()
	}
	if r.cfg.OnEpoch != nil {
		r.cfg.OnEpoch(r.tick, r)
	}
	return nil
}

func (r *Runtime[V]) takeCheckpoint() {
	if r.job.Clone == nil {
		return
	}
	ck := &checkpoint[V]{tick: r.tick, values: make([][]V, len(r.values))}
	for i, vs := range r.values {
		cp := make([]V, len(vs))
		for j, v := range vs {
			cp[j] = r.job.Clone(v)
		}
		ck.values[i] = cp
	}
	if r.cfg.SnapshotMaster != nil {
		ck.master = r.cfg.SnapshotMaster()
	}
	r.ckpt = ck
}

func (r *Runtime[V]) recover() error {
	if r.ckpt == nil {
		return fmt.Errorf("mapreduce %s: worker failed with no checkpoint available", r.job.Name)
	}
	for n := 0; n < r.cfg.Workers; n++ {
		id := cluster.NodeID(n)
		r.tr.Recover(id)
		r.tr.Drain(id) // discard in-flight messages from the failed epoch
	}
	for i, vs := range r.ckpt.values {
		cp := make([]V, len(vs))
		for j, v := range vs {
			cp[j] = r.job.Clone(v)
		}
		r.values[i] = cp
	}
	if r.cfg.RestoreMaster != nil {
		r.cfg.RestoreMaster(r.ckpt.master)
	}
	r.tick = r.ckpt.tick
	r.recovered++
	return nil
}

// runTick executes one map → reduce1 (→ reduce2) superstep. Each compute
// phase is followed by a transport EndPhase and then a drain phase under
// its own barrier: all workers (local goroutines and, over TCP, remote
// processes) must finish sending before any worker collects, otherwise a
// fast worker's next-phase output could land in a slow worker's
// not-yet-drained inbox.
func (r *Runtime[V]) runTick() error {
	stage := make([][]V, r.cfg.Workers)

	// Phase 1: map (update + distribute).
	r.eachWorker(func(w int) {
		if r.tr.Failed(cluster.NodeID(w)) {
			return
		}
		ctx := &Ctx{Tick: r.tick, Worker: w}
		out := newOutbox[V](r.cfg.Workers)
		for _, v := range r.values[w] {
			r.job.Map(ctx, v, out.emit)
		}
		r.values[w] = nil // ownership moves through the dataflow
		r.flush(w, tagMapOut, out)
	})
	if err := r.tr.FlushPhase(); err != nil {
		return err
	}
	overlap := r.job.Reduce1Early != nil
	if overlap {
		// Overlap window: each worker's sends to itself are complete the
		// moment the local flush returns, so the early (interior) pass
		// computes while peer envelopes are still in flight.
		r.eachWorker(func(w int) {
			if r.tr.Failed(cluster.NodeID(w)) {
				return
			}
			ctx := &Ctx{Tick: r.tick, Worker: w}
			r.job.Reduce1Early(ctx, r.collectSelf(w, tagMapOut))
		})
	}
	if err := r.tr.AwaitPhase(); err != nil {
		return err
	}
	r.drainAll(stage, tagMapOut)
	r.barrier()

	// Phase 2: reduce1 (query phase / local effects).
	r.eachWorker(func(w int) {
		if r.tr.Failed(cluster.NodeID(w)) {
			return
		}
		ctx := &Ctx{Tick: r.tick, Worker: w}
		out := newOutbox[V](r.cfg.Workers)
		if overlap {
			r.job.Reduce1Late(ctx, stage[w], out.emit)
		} else {
			r.job.Reduce1(ctx, stage[w], out.emit)
		}
		r.flush(w, tagReduce1Out, out)
	})
	if err := r.tr.EndPhase(); err != nil {
		return err
	}
	r.drainAll(stage, tagReduce1Out)
	r.barrier()

	// Phase 3: optional reduce2 (global effect aggregation).
	if r.job.Reduce2 != nil {
		r.eachWorker(func(w int) {
			if r.tr.Failed(cluster.NodeID(w)) {
				return
			}
			ctx := &Ctx{Tick: r.tick, Worker: w}
			out := newOutbox[V](r.cfg.Workers)
			r.job.Reduce2(ctx, stage[w], out.emit)
			r.flush(w, tagReduce2Out, out)
		})
		if err := r.tr.EndPhase(); err != nil {
			return err
		}
		r.drainAll(stage, tagReduce2Out)
		r.barrier()
	}

	// The final phase's drained values become each worker's values for the
	// next tick ("the final reducer ... sends them to the map task on the
	// same node", §3.3).
	r.eachWorker(func(w int) {
		if r.tr.Failed(cluster.NodeID(w)) {
			return
		}
		r.values[w] = stage[w]
	})
	return nil
}

// drainAll runs a barriered drain phase: every worker empties its inbox of
// messages with the given tag into stage.
func (r *Runtime[V]) drainAll(stage [][]V, tag int) {
	r.eachWorker(func(w int) {
		if r.tr.Failed(cluster.NodeID(w)) {
			stage[w] = nil
			return
		}
		stage[w] = r.collect(w, tag)
	})
}

// outbox buffers emissions grouped by destination partition so each
// (sender, receiver, phase) triple costs one message.
type outbox[V any] struct {
	byDest [][]V
}

func newOutbox[V any](n int) *outbox[V] {
	return &outbox[V]{byDest: make([][]V, n)}
}

func (o *outbox[V]) emit(part int, v V) {
	o.byDest[part] = append(o.byDest[part], v)
}

// flush sends the buffered batches and charges the sender's network time.
func (r *Runtime[V]) flush(w int, tag int, o *outbox[V]) {
	for dest, batch := range o.byDest {
		if len(batch) == 0 {
			continue
		}
		bytes := 0
		if r.job.SizeOf != nil {
			for _, v := range batch {
				bytes += r.job.SizeOf(v)
			}
		}
		_ = r.tr.Send(cluster.Message{
			From:    cluster.NodeID(w),
			To:      cluster.NodeID(dest),
			Tag:     tag,
			Payload: batch,
			Bytes:   bytes,
		})
		if r.cfg.VClock != nil && dest != w {
			// Collocated traffic bypasses the network: free.
			r.cfg.VClock.ChargeNetwork(cluster.NodeID(w), 1, int64(bytes))
		}
	}
}

// collectSelf drains only worker w's sends to itself — complete as soon
// as the local FlushPhase returns, before any peer marker.
func (r *Runtime[V]) collectSelf(w int, tag int) []V {
	var out []V
	for _, m := range r.tr.DrainSelf(cluster.NodeID(w)) {
		if m.Tag != tag {
			panic(fmt.Sprintf("mapreduce: worker %d got tag %d during phase %d", w, m.Tag, tag))
		}
		out = append(out, m.Payload.([]V)...)
	}
	return out
}

// collect drains worker w's inbox and concatenates batches with the given
// phase tag.
func (r *Runtime[V]) collect(w int, tag int) []V {
	var out []V
	for _, m := range r.tr.Drain(cluster.NodeID(w)) {
		if m.Tag != tag {
			// A phase mismatch means a routing bug; fail loudly.
			panic(fmt.Sprintf("mapreduce: worker %d got tag %d during phase %d", w, m.Tag, tag))
		}
		out = append(out, m.Payload.([]V)...)
	}
	return out
}

// eachWorker runs fn for every locally computed partition, concurrently
// unless Sequential. In a single-process runtime that is every partition;
// in a multi-process run each process covers only its LocalParts block and
// the transport's phase protocol keeps the processes in lockstep.
func (r *Runtime[V]) eachWorker(fn func(w int)) {
	if r.cfg.Sequential {
		for _, w := range r.local {
			fn(w)
		}
		return
	}
	var wg sync.WaitGroup
	for _, w := range r.local {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

func (r *Runtime[V]) barrier() {
	if r.cfg.VClock != nil {
		r.cfg.VClock.Barrier()
	}
}

type checkpoint[V any] struct {
	tick   uint64
	values [][]V
	master any
}
