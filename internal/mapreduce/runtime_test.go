package mapreduce

import (
	"encoding/gob"
	"sort"
	"testing"

	"github.com/bigreddata/brace/internal/cluster"
)

// rec is the toy value for runtime tests: either an "item" (an agent
// analogue owned by partition Owner) or a partial-aggregate record
// produced during a two-reduce tick.
type rec struct {
	ID      int
	Owner   int
	Val     float64
	Partial bool
}

func init() { gob.Register(rec{}) }

func cloneRec(r rec) rec { return r }

func sizeRec(r rec) int { return 24 }

// ringJob moves every item one partition to the right each tick and has
// the reducer add the number of co-located items to each item's Val. The
// reduction is order-independent, so parallel and sequential runs agree.
func ringJob(workers int) Job[rec] {
	return Job[rec]{
		Name: "ring",
		Map: func(ctx *Ctx, v rec, emit Emit[rec]) {
			v.Owner = (v.Owner + 1) % workers
			emit(v.Owner, v)
		},
		Reduce1: func(ctx *Ctx, vs []rec, emit Emit[rec]) {
			n := float64(len(vs))
			for _, v := range vs {
				v.Val += n
				emit(v.Owner, v)
			}
		},
		SizeOf: sizeRec,
		Clone:  cloneRec,
	}
}

// broadcastJob exercises the map-reduce-reduce path: each item is
// replicated to every partition; reduce1 emits one partial (Val=1) per
// replica to the item's owner; reduce2 folds partials into the item so
// after each tick Val == workers.
func broadcastJob(workers int) Job[rec] {
	return Job[rec]{
		Name: "broadcast",
		Map: func(ctx *Ctx, v rec, emit Emit[rec]) {
			v.Val = 0
			for p := 0; p < workers; p++ {
				cp := v
				cp.Partial = p != v.Owner // the owner keeps the real item
				emit(p, cp)
			}
		},
		Reduce1: func(ctx *Ctx, vs []rec, emit Emit[rec]) {
			for _, v := range vs {
				if !v.Partial {
					emit(v.Owner, v) // pass the item through to its owner
				}
				emit(v.Owner, rec{ID: v.ID, Owner: v.Owner, Val: 1, Partial: true})
			}
		},
		Reduce2: func(ctx *Ctx, vs []rec, emit Emit[rec]) {
			sums := map[int]float64{}
			items := map[int]rec{}
			for _, v := range vs {
				if v.Partial {
					sums[v.ID] += v.Val
				} else {
					items[v.ID] = v
				}
			}
			for id, it := range items {
				it.Val = sums[id]
				emit(it.Owner, it)
			}
		},
		SizeOf: sizeRec,
		Clone:  cloneRec,
	}
}

func loadItems(r *Runtime[rec], n, workers int) {
	for i := 0; i < n; i++ {
		r.Load(i%workers, []rec{{ID: i, Owner: i % workers}})
	}
}

func sortedItems(r *Runtime[rec]) []rec {
	all := r.AllValues()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

func TestRingConservationAndMigration(t *testing.T) {
	const workers, items, ticks = 4, 16, 8
	r := New(ringJob(workers), Config{Workers: workers, EpochTicks: 4})
	loadItems(r, items, workers)
	if err := r.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	all := sortedItems(r)
	if len(all) != items {
		t.Fatalf("item count = %d, want %d", len(all), items)
	}
	for _, it := range all {
		wantOwner := (it.ID%workers + ticks) % workers
		if it.Owner != wantOwner {
			t.Errorf("item %d owner = %d, want %d", it.ID, it.Owner, wantOwner)
		}
		// 16 items / 4 partitions = 4 co-located per tick, 8 ticks.
		if it.Val != float64(4*ticks) {
			t.Errorf("item %d Val = %v, want %v", it.ID, it.Val, 4*ticks)
		}
	}
	if r.Tick() != ticks {
		t.Errorf("Tick = %d", r.Tick())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	const workers, items, ticks = 5, 37, 11
	par := New(ringJob(workers), Config{Workers: workers})
	seq := New(ringJob(workers), Config{Workers: workers, Sequential: true})
	loadItems(par, items, workers)
	loadItems(seq, items, workers)
	if err := par.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if err := seq.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	a, b := sortedItems(par), sortedItems(seq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel/sequential diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTwoReducePathGlobalAggregation(t *testing.T) {
	const workers, items, ticks = 4, 10, 5
	r := New(broadcastJob(workers), Config{Workers: workers})
	loadItems(r, items, workers)
	if err := r.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	all := sortedItems(r)
	if len(all) != items {
		t.Fatalf("item count = %d, want %d", len(all), items)
	}
	for _, it := range all {
		if it.Val != float64(workers) {
			t.Errorf("item %d global aggregate = %v, want %v", it.ID, it.Val, workers)
		}
		if it.Partial {
			t.Errorf("partial record leaked into final state: %+v", it)
		}
	}
}

func TestFailureRecoveryMatchesFailureFreeRun(t *testing.T) {
	const workers, items, ticks = 4, 16, 20
	clean := New(ringJob(workers), Config{
		Workers: workers, EpochTicks: 5, CheckpointEveryEpochs: 1,
	})
	loadItems(clean, items, workers)
	if err := clean.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}

	failures := cluster.NewFailurePlan().CrashAt(7, 2)
	faulty := New(ringJob(workers), Config{
		Workers: workers, EpochTicks: 5, CheckpointEveryEpochs: 1,
		Failures: failures,
	})
	loadItems(faulty, items, workers)
	if err := faulty.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if faulty.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d, want 1", faulty.Recoveries())
	}
	a, b := sortedItems(clean), sortedItems(faulty)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recovered run diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultipleFailures(t *testing.T) {
	const workers, items, ticks = 3, 9, 30
	failures := cluster.NewFailurePlan().CrashAt(4, 0).CrashAt(13, 1).CrashAt(22, 2)
	r := New(ringJob(workers), Config{
		Workers: workers, EpochTicks: 5, CheckpointEveryEpochs: 1, Failures: failures,
	})
	loadItems(r, items, workers)
	if err := r.RunTicks(ticks); err != nil {
		t.Fatal(err)
	}
	if r.Recoveries() != 3 {
		t.Errorf("Recoveries = %d, want 3", r.Recoveries())
	}
	if got := len(sortedItems(r)); got != items {
		t.Errorf("items after recoveries = %d, want %d", got, items)
	}
	if r.Tick() != ticks {
		t.Errorf("Tick = %d, want %d", r.Tick(), ticks)
	}
}

func TestFailureWithoutCloneIsFatal(t *testing.T) {
	job := ringJob(2)
	job.Clone = nil // no checkpointing possible
	r := New(job, Config{
		Workers: 2, EpochTicks: 2,
		Failures: cluster.NewFailurePlan().CrashAt(1, 0),
	})
	loadItems(r, 4, 2)
	if err := r.RunTicks(6); err == nil {
		t.Fatal("expected unrecoverable failure error")
	}
}

func TestEpochHookAndOwnedCounts(t *testing.T) {
	const workers = 3
	var hookTicks []uint64
	var lastCounts []int
	r := New(ringJob(workers), Config{
		Workers: workers, EpochTicks: 4,
		OnEpoch: func(tick uint64, v EpochView) {
			hookTicks = append(hookTicks, tick)
			lastCounts = v.OwnedCounts()
			if v.Tick() != tick {
				t.Errorf("EpochView.Tick = %d, want %d", v.Tick(), tick)
			}
			if v.Transport() == nil {
				t.Error("EpochView.Transport nil")
			}
		},
	})
	loadItems(r, 9, workers)
	if err := r.RunTicks(10); err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 8, 10} // epoch boundaries + final tick
	if len(hookTicks) != len(want) {
		t.Fatalf("hook ticks = %v, want %v", hookTicks, want)
	}
	for i := range want {
		if hookTicks[i] != want[i] {
			t.Fatalf("hook ticks = %v, want %v", hookTicks, want)
		}
	}
	total := 0
	for _, c := range lastCounts {
		total += c
	}
	if total != 9 {
		t.Errorf("OwnedCounts total = %d, want 9", total)
	}
}

func TestTransportMeteringLocalBypass(t *testing.T) {
	// One worker: every message is collocated, none cross the network.
	r := New(ringJob(1), Config{Workers: 1})
	loadItems(r, 5, 1)
	if err := r.RunTicks(3); err != nil {
		t.Fatal(err)
	}
	m := r.Transport().Metrics().Totals()
	if m.SentMsgs != 0 {
		t.Errorf("single worker sent %d network msgs", m.SentMsgs)
	}
	if m.LocalMsgs == 0 {
		t.Error("no local traffic recorded")
	}
}

func TestVClockChargesNetworkOnlyForRemote(t *testing.T) {
	model := cluster.CostModel{SecPerByte: 1, SecPerMsg: 0}
	// 2 workers: ring items alternate partitions each tick, always remote.
	vc := cluster.NewVClock(2, model)
	r := New(ringJob(2), Config{Workers: 2, VClock: vc})
	loadItems(r, 2, 2)
	if err := r.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	if vc.Now() == 0 {
		t.Error("remote traffic should cost virtual time")
	}

	vc1 := cluster.NewVClock(1, model)
	r1 := New(ringJob(1), Config{Workers: 1, VClock: vc1})
	loadItems(r1, 2, 1)
	if err := r1.RunTicks(1); err != nil {
		t.Fatal(err)
	}
	if vc1.Now() != 0 {
		t.Errorf("collocated traffic cost %v virtual seconds; want 0", vc1.Now())
	}
}

func TestMasterSnapshotRestoredOnRecovery(t *testing.T) {
	const workers = 2
	masterState := 0 // e.g. a partitioning version
	r := New(ringJob(workers), Config{
		Workers: workers, EpochTicks: 2, CheckpointEveryEpochs: 1,
		Failures:       cluster.NewFailurePlan().CrashAt(3, 1),
		SnapshotMaster: func() any { return masterState },
		RestoreMaster:  func(v any) { masterState = v.(int) },
		OnEpoch: func(tick uint64, _ EpochView) {
			masterState++ // master mutates its state each epoch
		},
	})
	loadItems(r, 4, workers)
	if err := r.RunTicks(8); err != nil {
		t.Fatal(err)
	}
	if r.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d", r.Recoveries())
	}
	// Epochs at ticks 2,4,6,8 → 4 increments in a clean run. The crash at
	// tick 3 rolls back to the tick-2 checkpoint whose master state was
	// snapshotted *before* the tick-2 epoch hook ran... the exact count
	// depends on ordering; what matters is the run completed and state is
	// consistent with re-execution (> 0 and deterministic).
	if masterState <= 0 {
		t.Errorf("masterState = %d", masterState)
	}
}

func TestDiskCheckpointRoundTrip(t *testing.T) {
	const workers, items = 3, 7
	r := New(ringJob(workers), Config{Workers: workers})
	loadItems(r, items, workers)
	if err := r.RunTicks(5); err != nil {
		t.Fatal(err)
	}
	want := sortedItems(r)

	d := DiskCheckpoint[rec]{Dir: t.TempDir()}
	if err := d.Save(r); err != nil {
		t.Fatal(err)
	}

	r2 := New(ringJob(workers), Config{Workers: workers})
	tick, err := d.Load(r2)
	if err != nil {
		t.Fatal(err)
	}
	if tick != 5 || r2.Tick() != 5 {
		t.Errorf("restored tick = %d", tick)
	}
	got := sortedItems(r2)
	if len(got) != len(want) {
		t.Fatalf("restored %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Continuing from the restore matches continuing the original.
	if err := r.RunTicks(3); err != nil {
		t.Fatal(err)
	}
	if err := r2.RunTicks(3); err != nil {
		t.Fatal(err)
	}
	a, b := sortedItems(r), sortedItems(r2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-restore divergence at %d", i)
		}
	}
}

func TestDiskCheckpointWorkerMismatch(t *testing.T) {
	r := New(ringJob(2), Config{Workers: 2})
	loadItems(r, 2, 2)
	d := DiskCheckpoint[rec]{Dir: t.TempDir()}
	if err := d.Save(r); err != nil {
		t.Fatal(err)
	}
	r3 := New(ringJob(3), Config{Workers: 3})
	if _, err := d.Load(r3); err == nil {
		t.Error("worker-count mismatch accepted")
	}
	empty := DiskCheckpoint[rec]{Dir: t.TempDir()}
	if _, err := empty.Load(r); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestOptimalCheckpointTicks(t *testing.T) {
	// δ=2 ticks, M=10000 ticks → sqrt(2*2*10000)-2 = 198.
	if got := OptimalCheckpointTicks(2, 10000); got != 198 {
		t.Errorf("OptimalCheckpointTicks = %d, want 198", got)
	}
	if got := OptimalCheckpointTicks(0, 100); got != 1 {
		t.Errorf("zero cost = %d, want 1", got)
	}
	if got := OptimalCheckpointTicks(100, 1); got != 1 {
		t.Errorf("huge cost = %d, want clamp to 1", got)
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero workers", func() { New(ringJob(1), Config{Workers: 0}) })
	bad := ringJob(1)
	bad.Map = nil
	mustPanic("nil map", func() { New(bad, Config{Workers: 1}) })
}

func BenchmarkRingTick16x1000(b *testing.B) {
	const workers, items = 16, 1000
	r := New(ringJob(workers), Config{Workers: workers})
	loadItems(r, items, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunTicks(1); err != nil {
			b.Fatal(err)
		}
	}
}
