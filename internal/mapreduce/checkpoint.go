package mapreduce

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Differ is the pluggable differential codec incremental checkpoints run
// on. Diff encodes cur against base (ok=false when the pair cannot be
// delta-encoded, e.g. ambiguous identities — the caller falls back to a
// full snapshot); Apply reconstructs exactly the encoded state, sharing
// nothing with base. The engine's envelope codec (engine.EnvelopeDiffer)
// is the production implementation, so disk checkpoints and the
// distributed control plane ship the same bytes.
type Differ[V any] interface {
	Diff(base, cur []V) (delta []byte, ok bool)
	Apply(base []V, delta []byte) ([]V, error)
}

// DiskCheckpoint is the persistent form of a coordinated checkpoint: each
// worker writes its main memory independently once the master fixes the
// tick boundary (§3.3: "the workers can write their checkpoints
// independently without global synchronization"). In this single-process
// reproduction the files are written from one goroutine, but the format is
// per-worker exactly as the design prescribes.
//
// With a Differ configured, Save is incremental: a full keyframe every
// FullEvery saves and a per-worker field-level delta file in between, so
// a periodic checkpoint of a large, slowly-changing world costs bytes
// proportional to what changed. Load replays keyframe + deltas back into
// exactly the state of the last Save.
type DiskCheckpoint[V any] struct {
	Dir string
	// Differ enables incremental saves (nil: every Save writes full
	// state, the original format).
	Differ Differ[V]
	// FullEvery makes every Nth Save a keyframe (0 = default 8; 1 =
	// every save full).
	FullEvery int

	prev   [][]V // state of the last save, unaliased with the runtime
	chain  int   // current keyframe chain id (incremental mode; ≥ 1)
	deltas int   // delta saves since the keyframe
}

type diskMeta struct {
	Tick    uint64
	Workers int
	// Chain identifies the keyframe generation the delta chain builds
	// on (0: the legacy flat format, worker-NNN.gob with no deltas).
	// Each keyframe starts a new chain under fresh file names, so a
	// save torn mid-keyframe never touches the files the last durable
	// meta — written atomically, and last — still points at.
	Chain int
	// Deltas is the length of the delta chain after the keyframe files.
	Deltas int
}

// keyframePath and deltaPath name the files of one chain. Chain 0 is
// the legacy flat layout.
func (d *DiskCheckpoint[V]) keyframePath(w, chain int) string {
	if chain == 0 {
		return filepath.Join(d.Dir, fmt.Sprintf("worker-%03d.gob", w))
	}
	return filepath.Join(d.Dir, fmt.Sprintf("worker-%03d.k%03d.gob", w, chain))
}

func (d *DiskCheckpoint[V]) deltaPath(w, chain, k int) string {
	return filepath.Join(d.Dir, fmt.Sprintf("worker-%03d.k%03d.d%02d.gob", w, chain, k))
}

// Save writes the runtime's current state under dir. V must be
// gob-encodable (the engine registers its envelope types).
func (d *DiskCheckpoint[V]) Save(r *Runtime[V]) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	keyframe := d.Differ == nil || d.prev == nil || d.fullEvery() <= 1 || d.deltas >= d.fullEvery()-1

	var deltaBlobs [][]byte
	if !keyframe {
		// Encode every worker before writing anything: one undiffable
		// worker demotes the whole save to a keyframe, keeping the
		// on-disk chain uniform.
		deltaBlobs = make([][]byte, r.Workers())
		for w := 0; w < r.Workers() && !keyframe; w++ {
			blob, ok := d.Differ.Diff(d.prev[w], r.Values(w))
			if !ok {
				keyframe = true
				break
			}
			deltaBlobs[w] = blob
		}
	}

	chain, deltas := d.chain, d.deltas
	if keyframe {
		// A fresh chain id: the files of the chain the durable meta
		// still references are never overwritten, so a save torn at any
		// point leaves that chain loadable (legacy mode keeps the flat
		// chain-0 names, and with it the original torn-save exposure).
		deltas = 0
		if d.Differ != nil {
			chain++
		}
		for w := 0; w < r.Workers(); w++ {
			if err := writeGob(d.keyframePath(w, chain), r.Values(w)); err != nil {
				return err
			}
		}
	} else {
		deltas++
		for w := 0; w < r.Workers(); w++ {
			if err := writeGob(d.deltaPath(w, chain, deltas), deltaBlobs[w]); err != nil {
				return err
			}
		}
	}
	// The atomically-renamed meta commits the save: everything before it
	// was invisible to Load, everything after it is best-effort.
	meta := diskMeta{Tick: r.Tick(), Workers: r.Workers(), Chain: chain, Deltas: deltas}
	if err := writeGobAtomic(filepath.Join(d.Dir, "meta.gob"), meta); err != nil {
		return err
	}
	if keyframe && chain > 1 {
		d.removeChain(chain - 1)
	}
	d.chain, d.deltas = chain, deltas
	if d.Differ != nil {
		return d.rebase(r)
	}
	return nil
}

// removeChain deletes a superseded chain's files, best-effort: they are
// garbage once the meta points past them.
func (d *DiskCheckpoint[V]) removeChain(chain int) {
	for _, pat := range []string{
		fmt.Sprintf("worker-*.k%03d.gob", chain),
		fmt.Sprintf("worker-*.k%03d.d*.gob", chain),
	} {
		paths, err := filepath.Glob(filepath.Join(d.Dir, pat))
		if err != nil {
			continue
		}
		for _, p := range paths {
			_ = os.Remove(p)
		}
	}
}

// rebase snapshots the just-saved state as the next diff baseline without
// requiring a clone primitive: a fresh-encode round trip through the
// Differ yields copies that share nothing with the live runtime.
func (d *DiskCheckpoint[V]) rebase(r *Runtime[V]) error {
	if d.prev == nil {
		d.prev = make([][]V, r.Workers())
	}
	for w := 0; w < r.Workers(); w++ {
		blob, ok := d.Differ.Diff(nil, r.Values(w))
		if !ok {
			d.prev = nil // cannot track; the next save falls back to a keyframe
			return nil
		}
		vs, err := d.Differ.Apply(nil, blob)
		if err != nil {
			return fmt.Errorf("checkpoint: rebase: %w", err)
		}
		d.prev[w] = vs
	}
	return nil
}

// Load restores a runtime's worker memories from dir — reading the
// keyframe files and replaying any delta chain — and primes the
// incremental baseline so the next Save can continue the chain. The
// runtime must have been built with the same worker count.
func (d *DiskCheckpoint[V]) Load(r *Runtime[V]) (tick uint64, err error) {
	var meta diskMeta
	if err := readGob(filepath.Join(d.Dir, "meta.gob"), &meta); err != nil {
		return 0, err
	}
	if meta.Workers != r.Workers() {
		return 0, fmt.Errorf("checkpoint: has %d workers, runtime has %d", meta.Workers, r.Workers())
	}
	if meta.Deltas > 0 && d.Differ == nil {
		return 0, fmt.Errorf("checkpoint: %s has a %d-delta chain but no Differ is configured", d.Dir, meta.Deltas)
	}
	if meta.Chain == 0 && meta.Deltas > 0 {
		return 0, fmt.Errorf("checkpoint: %s meta names a delta chain on the flat layout", d.Dir)
	}
	for w := 0; w < r.Workers(); w++ {
		var vs []V
		if err := readGob(d.keyframePath(w, meta.Chain), &vs); err != nil {
			return 0, err
		}
		for k := 1; k <= meta.Deltas; k++ {
			var blob []byte
			path := d.deltaPath(w, meta.Chain, k)
			if err := readGob(path, &blob); err != nil {
				return 0, err
			}
			if vs, err = d.Differ.Apply(vs, blob); err != nil {
				return 0, fmt.Errorf("checkpoint: delta %d of %s: %w", k, path, err)
			}
		}
		r.values[w] = vs
	}
	r.tick = meta.Tick
	r.takeCheckpoint() // re-seed in-memory rollback point
	if d.Differ != nil {
		d.chain, d.deltas = meta.Chain, meta.Deltas
		if err := d.rebase(r); err != nil {
			return 0, err
		}
	}
	return meta.Tick, nil
}

func (d *DiskCheckpoint[V]) fullEvery() int {
	if d.FullEvery <= 0 {
		return 8
	}
	return d.FullEvery
}

// writeGobAtomic writes through a temp file and renames, so readers see
// either the old contents or the new — never a torn write. Used for the
// meta file, whose durability defines which save "happened".
func writeGobAtomic(path string, v any) error {
	tmp := path + ".tmp"
	if err := writeGob(tmp, v); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

func writeGob(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", path, err)
	}
	return f.Close()
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return nil
}

// OptimalCheckpointTicks estimates the checkpoint interval (in ticks) that
// minimizes expected total runtime, using the first-order Young/Daly
// formula the paper cites [13]: t_opt ≈ sqrt(2·δ·M) − δ, where δ is the
// cost of writing one checkpoint and M the mean time between failures,
// both expressed here in ticks. The result is clamped to at least 1.
func OptimalCheckpointTicks(checkpointCostTicks, mtbfTicks float64) int {
	if checkpointCostTicks <= 0 || mtbfTicks <= 0 {
		return 1
	}
	t := math.Sqrt(2*checkpointCostTicks*mtbfTicks) - checkpointCostTicks
	if t < 1 {
		return 1
	}
	return int(t)
}
