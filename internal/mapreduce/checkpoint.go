package mapreduce

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// DiskCheckpoint is the persistent form of a coordinated checkpoint: each
// worker writes its main memory independently once the master fixes the
// tick boundary (§3.3: "the workers can write their checkpoints
// independently without global synchronization"). In this single-process
// reproduction the files are written from one goroutine, but the format is
// per-worker exactly as the design prescribes.
type DiskCheckpoint[V any] struct {
	Dir string
}

type diskMeta struct {
	Tick    uint64
	Workers int
}

// Save writes the runtime's current state under dir. V must be
// gob-encodable (the engine registers its envelope types).
func (d DiskCheckpoint[V]) Save(r *Runtime[V]) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	meta := diskMeta{Tick: r.Tick(), Workers: r.Workers()}
	if err := writeGob(filepath.Join(d.Dir, "meta.gob"), meta); err != nil {
		return err
	}
	for w := 0; w < r.Workers(); w++ {
		path := filepath.Join(d.Dir, fmt.Sprintf("worker-%03d.gob", w))
		if err := writeGob(path, r.Values(w)); err != nil {
			return err
		}
	}
	return nil
}

// Load restores a runtime's worker memories from dir. The runtime must
// have been built with the same worker count.
func (d DiskCheckpoint[V]) Load(r *Runtime[V]) (tick uint64, err error) {
	var meta diskMeta
	if err := readGob(filepath.Join(d.Dir, "meta.gob"), &meta); err != nil {
		return 0, err
	}
	if meta.Workers != r.Workers() {
		return 0, fmt.Errorf("checkpoint: has %d workers, runtime has %d", meta.Workers, r.Workers())
	}
	for w := 0; w < r.Workers(); w++ {
		var vs []V
		path := filepath.Join(d.Dir, fmt.Sprintf("worker-%03d.gob", w))
		if err := readGob(path, &vs); err != nil {
			return 0, err
		}
		r.values[w] = vs
	}
	r.tick = meta.Tick
	r.takeCheckpoint() // re-seed in-memory rollback point
	return meta.Tick, nil
}

func writeGob(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", path, err)
	}
	return f.Close()
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return nil
}

// OptimalCheckpointTicks estimates the checkpoint interval (in ticks) that
// minimizes expected total runtime, using the first-order Young/Daly
// formula the paper cites [13]: t_opt ≈ sqrt(2·δ·M) − δ, where δ is the
// cost of writing one checkpoint and M the mean time between failures,
// both expressed here in ticks. The result is clamped to at least 1.
func OptimalCheckpointTicks(checkpointCostTicks, mtbfTicks float64) int {
	if checkpointCostTicks <= 0 || mtbfTicks <= 0 {
		return 1
	}
	t := math.Sqrt(2*checkpointCostTicks*mtbfTicks) - checkpointCostTicks
	if t < 1 {
		return 1
	}
	return int(t)
}
