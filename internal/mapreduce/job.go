// Package mapreduce implements BRACE's special-purpose MapReduce runtime
// (paper §3.3): an iterated, main-memory, shared-nothing map → reduce
// (→ reduce₂) engine. It differs from a conventional MapReduce (Hadoop)
// runtime exactly where the paper says it must:
//
//   - ticks are short, so everything stays in main memory and the output of
//     one tick's final reduce feeds the next tick's map directly;
//   - map and reduce tasks for a partition are collocated on one worker, so
//     same-partition traffic bypasses the network (metered as "local");
//   - the optional second reduce implements the map-reduce-reduce model for
//     non-local effect assignments (Table 1, Appendix A, Fig. 10);
//   - the master interacts with workers only at epoch boundaries, where it
//     triggers coordinated checkpoints, detects failures (recovering by
//     rollback + re-execution), and lets the application rebalance
//     partitions.
//
// The runtime is generic over the value type V; the engine package
// instantiates it with agent envelopes.
package mapreduce

import (
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/transport"
)

// Ctx carries per-invocation context into user functions.
type Ctx struct {
	// Tick is the current tick number (0-based).
	Tick uint64
	// Worker is the node executing this call. Partitions and workers are
	// 1:1 in BRACE — partition p's map/reduce tasks run on worker p.
	Worker int
}

// Emit routes a value to the partition part; the runtime delivers it to the
// task of the next phase on the worker owning that partition.
type Emit[V any] func(part int, v V)

// Job defines one iterated map-reduce(-reduce) computation.
type Job[V any] struct {
	// Name labels the job in errors and checkpoints.
	Name string

	// Map is invoked once per value held by a worker at the start of a
	// tick. For BRACE this is the update phase of tick t−1 followed by
	// distribution/replication (mapᵗ₁ of Table 1). Emissions are grouped
	// by destination partition and delivered to Reduce1.
	Map func(ctx *Ctx, v V, emit Emit[V])

	// Reduce1 receives every value emitted to this worker's partition and
	// runs the query phase (reduceᵗ₁). With no Reduce2, its emissions
	// become next tick's values at their destination partitions. With a
	// Reduce2, its emissions are the partially aggregated effect values
	// routed to owning partitions.
	Reduce1 func(ctx *Ctx, values []V, emit Emit[V])

	// Reduce1Early and Reduce1Late, when set (always together, and only
	// without Reduce2), split the query phase into an overlapped two-pass
	// reduce. Early runs per worker on just the values the worker sent to
	// *itself* during map, in the window between the map phase's
	// FlushPhase and AwaitPhase — i.e. while peer envelopes are still in
	// flight — and may not emit. Late runs in Reduce1's place once the
	// phase has fully drained, receiving the remaining (peer-sent)
	// values; its emissions become next tick's values. Reduce1 is ignored
	// when the pair is set.
	Reduce1Early func(ctx *Ctx, self []V)
	Reduce1Late  func(ctx *Ctx, rest []V, emit Emit[V])

	// Reduce2, when non-nil, performs the global effect aggregation ⊕
	// (reduceᵗ₂). Its emissions become next tick's values. The identity
	// second map of the formal model (mapᵗ₂) "does not perform any
	// computation and can be eliminated in an implementation" — it is
	// eliminated here.
	Reduce2 func(ctx *Ctx, values []V, emit Emit[V])

	// SizeOf estimates the wire size of one value in bytes for the
	// transport meter and network cost model. Nil means size 0.
	SizeOf func(v V) int

	// Clone deep-copies a value; required for checkpointing. Nil disables
	// checkpoint support.
	Clone func(v V) V
}

// Config tunes the runtime.
type Config struct {
	// Workers is the number of worker nodes (= partitions). Must be ≥ 1.
	Workers int

	// Transport overrides the message layer (default: a fresh in-memory
	// transport). A multi-process run passes the TCP transport here; its
	// node count must equal Workers.
	Transport transport.Transport

	// LocalParts restricts this runtime to computing the given partitions
	// (nil = all of them). Set by the distributed driver so each worker
	// process runs the same lockstep loop over its own partition block;
	// the transport's phase protocol delivers everything else. With
	// LocalParts set, Values/AllValues/OwnedCounts cover only the local
	// block, and failure injection and load balancing are unsupported
	// (the callers enforce this).
	LocalParts []int

	// EpochTicks is the number of ticks between master/worker
	// interactions (checkpoints, failure detection, rebalancing). The
	// paper amortizes coordination overhead across an epoch. Default 10.
	EpochTicks int

	// CheckpointEveryEpochs triggers a coordinated checkpoint every k
	// epochs; 0 disables periodic checkpoints (an initial checkpoint is
	// still taken when Clone is available, so recovery can always rewind
	// to tick 0).
	CheckpointEveryEpochs int

	// Failures optionally schedules worker crashes (for tests/ablations).
	Failures *cluster.FailurePlan

	// VClock, when non-nil, accounts virtual time: the runtime charges
	// network costs per message batch and calls Barrier after each
	// communication phase. Compute costs are charged by the application
	// inside Map/Reduce (it knows its work counters).
	VClock *cluster.VClock

	// Sequential forces phases to run workers one at a time on the
	// calling goroutine. Used by determinism tests; the default runs
	// workers concurrently.
	Sequential bool

	// Barrier, when non-nil, runs first at every epoch boundary, before
	// failure detection, checkpoints and OnEpoch. A multi-process worker
	// uses it for the coordinator round-trip: ship epoch statistics, wait
	// for the master's directive, apply it. A returned error aborts
	// RunTicks with that error (the distributed worker unwinds this way
	// when the coordinator orders a restore).
	Barrier func(tick uint64) error

	// OnEpoch, when non-nil, runs on the master at each epoch boundary
	// after the epoch's ticks complete. BRACE hooks load balancing here.
	OnEpoch func(tick uint64, r EpochView)

	// SnapshotMaster/RestoreMaster capture application master state (e.g.
	// the current partitioning function) inside checkpoints so recovery
	// restores a consistent view. Optional.
	SnapshotMaster func() any
	RestoreMaster  func(any)
}

// EpochView is the read-only interface OnEpoch receives.
type EpochView interface {
	// OwnedCounts returns the number of values held per worker.
	OwnedCounts() []int
	// Tick returns the current tick.
	Tick() uint64
	// Transport exposes traffic metrics.
	Transport() transport.Transport
}

// phase tags for transport messages.
const (
	tagMapOut = iota + 1
	tagReduce1Out
	tagReduce2Out
)
