package mapreduce

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// recDiffer is a minimal Differ for the toy rec type: the "delta" is a
// gob of the records that changed (or appeared) since base plus the IDs
// that vanished. It exercises the chain mechanics — keyframe cadence,
// replay order, Differ-required loads — not byte savings.
type recDiffer struct{}

type recDelta struct {
	Changed []rec
	Removed []int
	Order   []int // IDs in current order, to reconstruct exactly
}

func (recDiffer) Diff(base, cur []rec) ([]byte, bool) {
	baseIdx := make(map[int]rec, len(base))
	for _, r := range base {
		if _, dup := baseIdx[r.ID]; dup {
			return nil, false
		}
		baseIdx[r.ID] = r
	}
	var d recDelta
	seen := make(map[int]bool, len(cur))
	for _, r := range cur {
		if seen[r.ID] {
			return nil, false
		}
		seen[r.ID] = true
		d.Order = append(d.Order, r.ID)
		if b, ok := baseIdx[r.ID]; !ok || b != r {
			d.Changed = append(d.Changed, r)
		}
	}
	for id := range baseIdx {
		if !seen[id] {
			d.Removed = append(d.Removed, id)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func (recDiffer) Apply(base []rec, delta []byte) ([]rec, error) {
	var d recDelta
	if err := gob.NewDecoder(bytes.NewReader(delta)).Decode(&d); err != nil {
		return nil, err
	}
	idx := make(map[int]rec, len(base))
	for _, r := range base {
		idx[r.ID] = r
	}
	for _, r := range d.Changed {
		idx[r.ID] = r
	}
	out := make([]rec, 0, len(d.Order))
	for _, id := range d.Order {
		r, ok := idx[id]
		if !ok {
			return nil, fmt.Errorf("recDiffer: id %d unknown", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// Incremental disk checkpoints: keyframe + delta chain on disk, exact
// replay on Load, keyframe cadence honored, and a fresh keyframe starting
// a new chain once FullEvery saves accumulate.
func TestDiskCheckpointIncrementalChain(t *testing.T) {
	const workers, items = 3, 7
	r := New(ringJob(workers), Config{Workers: workers})
	loadItems(r, items, workers)
	dir := t.TempDir()
	d := DiskCheckpoint[rec]{Dir: dir, Differ: recDiffer{}, FullEvery: 3}

	// Saves 1..3: keyframe, delta, delta. Save 4: keyframe again.
	for i := 1; i <= 4; i++ {
		if err := r.RunTicks(2); err != nil {
			t.Fatal(err)
		}
		if err := d.Save(r); err != nil {
			t.Fatal(err)
		}
		var meta diskMeta
		if err := readGob(filepath.Join(dir, "meta.gob"), &meta); err != nil {
			t.Fatal(err)
		}
		wantDeltas := (i - 1) % 3
		if meta.Deltas != wantDeltas {
			t.Fatalf("save %d: meta.Deltas = %d, want %d", i, meta.Deltas, wantDeltas)
		}
	}
	// Save 4 opened chain 2; chain 1 and its deltas are superseded and
	// cleaned up (the meta rename is the commit point, so at no moment
	// was the described chain incomplete on disk).
	if _, err := os.Stat(filepath.Join(dir, "worker-000.k002.gob")); err != nil {
		t.Fatalf("chain-2 keyframe missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "worker-000.k001.gob")); err == nil {
		t.Error("superseded chain-1 keyframe not cleaned up")
	}

	// One more delta on top of the new keyframe, then load and compare.
	if err := r.RunTicks(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(r); err != nil {
		t.Fatal(err)
	}
	want := sortedItems(r)

	r2 := New(ringJob(workers), Config{Workers: workers})
	d2 := DiskCheckpoint[rec]{Dir: dir, Differ: recDiffer{}}
	tick, err := d2.Load(r2)
	if err != nil {
		t.Fatal(err)
	}
	if tick != 10 {
		t.Fatalf("restored tick = %d, want 10", tick)
	}
	got := sortedItems(r2)
	if len(got) != len(want) {
		t.Fatalf("restored %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored item %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A loaded checkpoint continues the chain: the next save is a delta
	// against the replayed state, and it still loads.
	if err := r2.RunTicks(2); err != nil {
		t.Fatal(err)
	}
	if err := d2.Save(r2); err != nil {
		t.Fatal(err)
	}
	r3 := New(ringJob(workers), Config{Workers: workers})
	d3 := DiskCheckpoint[rec]{Dir: dir, Differ: recDiffer{}}
	if tick, err := d3.Load(r3); err != nil || tick != 12 {
		t.Fatalf("chained load: tick %d, err %v", tick, err)
	}

	// Without the codec the chain must refuse to load.
	plain := DiskCheckpoint[rec]{Dir: dir}
	if _, err := plain.Load(r2); err == nil {
		t.Error("delta chain loaded without a Differ")
	}

	// A save torn mid-keyframe — next chain's files half-written, meta
	// never renamed — must leave the described chain loadable: Load
	// follows only the meta, which still points at the complete chain.
	if err := os.WriteFile(filepath.Join(dir, "worker-000.k003.gob"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r4 := New(ringJob(workers), Config{Workers: workers})
	d4 := DiskCheckpoint[rec]{Dir: dir, Differ: recDiffer{}}
	if tick, err := d4.Load(r4); err != nil || tick != 12 {
		t.Fatalf("load after torn keyframe: tick %d, err %v", tick, err)
	}
}
