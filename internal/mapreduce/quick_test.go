package mapreduce

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for random partition counts, item counts, routing patterns and
// tick counts, the runtime conserves every item (nothing is lost or
// duplicated by the exchange machinery) and parallel execution equals
// sequential execution.
func TestQuickConservationAndParallelEquivalence(t *testing.T) {
	f := func(seed int64, nw, ni, nt uint8) bool {
		workers := int(nw%6) + 1
		items := int(ni % 40)
		ticks := int(nt%8) + 1
		rng := rand.New(rand.NewSource(seed))

		// Random deterministic routing: each item hops by a per-item
		// stride derived from its ID.
		job := Job[rec]{
			Name: "quick",
			Map: func(ctx *Ctx, v rec, emit Emit[rec]) {
				stride := v.ID%workers + 1
				v.Owner = (v.Owner + stride) % workers
				emit(v.Owner, v)
			},
			Reduce1: func(ctx *Ctx, vs []rec, emit Emit[rec]) {
				for _, v := range vs {
					v.Val++
					emit(v.Owner, v)
				}
			},
			SizeOf: sizeRec,
			Clone:  cloneRec,
		}
		mk := func(sequential bool) *Runtime[rec] {
			r := New(job, Config{Workers: workers, Sequential: sequential})
			for i := 0; i < items; i++ {
				r.Load(rng.Intn(workers), []rec{{ID: i, Owner: i % workers}})
			}
			return r
		}
		// Reset rng so both runtimes load identically.
		rng = rand.New(rand.NewSource(seed))
		par := mk(false)
		rng = rand.New(rand.NewSource(seed))
		seq := mk(true)

		if err := par.RunTicks(ticks); err != nil {
			return false
		}
		if err := seq.RunTicks(ticks); err != nil {
			return false
		}
		a, b := sortedItems(par), sortedItems(seq)
		if len(a) != items || len(b) != items {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i].Val != float64(ticks) { // one increment per tick
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: checkpoints are transparent — runs with and without periodic
// checkpointing (no failures) are identical.
func TestQuickCheckpointTransparency(t *testing.T) {
	f := func(nw, ni, nt uint8) bool {
		workers := int(nw%5) + 1
		items := int(ni%30) + 1
		ticks := int(nt%12) + 2
		mk := func(ck int) *Runtime[rec] {
			r := New(ringJob(workers), Config{
				Workers: workers, EpochTicks: 3, CheckpointEveryEpochs: ck,
			})
			loadItems(r, items, workers)
			return r
		}
		a := mk(0) // no checkpoints
		b := mk(1) // checkpoint every epoch
		if err := a.RunTicks(ticks); err != nil {
			return false
		}
		if err := b.RunTicks(ticks); err != nil {
			return false
		}
		x, y := sortedItems(a), sortedItems(b)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return len(x) == len(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
