// Package transport is the wire layer of the BRACE cluster: it delivers
// the messages that flow between partitions of the iterated MapReduce
// dataflow, behind one interface with two implementations.
//
//   - Mem keeps every inbox in process memory. It is the simulated-cluster
//     configuration the paper's scale-up figures are reproduced on, and the
//     reference semantics for everything else.
//   - TCP connects real OS processes through a coordinator: messages for
//     partitions owned by another process travel as length-prefixed
//     gob-encoded frames over sockets, with an end-of-phase marker protocol
//     standing in for the in-memory runtime's barriers.
//
// The runtime is bulk-synchronous: a phase's sends all complete before any
// receiver drains its inbox, so the interface exposes phase-oriented
// Send / EndPhase / Drain rather than streaming channels.
package transport

import "github.com/bigreddata/brace/internal/cluster"

// Transport delivers messages between the nodes (= partitions) of a BRACE
// cluster and meters every delivery.
//
// Send is safe for concurrent use by many sending nodes; Drain(n) must not
// race with sends to n — the runtime's phase structure guarantees this:
// every worker finishes its sends, then EndPhase is called once, then
// workers drain. Implementations backed by real networks use EndPhase to
// flush and to wait until all remote sends of the phase have arrived.
type Transport interface {
	// N returns the number of nodes.
	N() int
	// Send enqueues a message for the destination node. Sends to or from
	// a failed node are dropped, mimicking a crashed worker.
	Send(m cluster.Message) error
	// Drain removes and returns all messages queued for node n, in
	// arrival order. Arrival order is deliberately *not* part of the
	// runtime's semantics (the state-effect pattern makes reducers
	// order-independent); tests shuffle drained batches to enforce that.
	Drain(n cluster.NodeID) []cluster.Message
	// Pending returns the number of queued messages for node n without
	// removing them.
	Pending(n cluster.NodeID) int
	// Fail marks a node as crashed: its queued messages are discarded and
	// all future traffic involving it is dropped until Recover.
	Fail(n cluster.NodeID)
	// Recover clears a node's failed status (after the master restores
	// its state from a checkpoint).
	Recover(n cluster.NodeID)
	// Failed reports whether node n is currently marked crashed.
	Failed(n cluster.NodeID) bool
	// Metrics returns this process's traffic counters. For multi-process
	// transports each process meters the messages it sends (so summing
	// Totals across processes counts each delivery exactly once).
	Metrics() *cluster.Metrics
	// EndPhase is the send/drain boundary: called after all of a phase's
	// sends complete and before any drain. Networked transports flush
	// outgoing frames and block until every peer process has ended the
	// same phase, which (with in-order delivery) guarantees complete
	// inboxes; Mem is a no-op. EndPhase ≡ FlushPhase followed by
	// AwaitPhase; it remains for callers without overlap.
	EndPhase() error
	// FlushPhase is the first half of EndPhase: it declares this
	// process's sends for the phase complete (networked transports emit
	// their end-of-phase marker) without waiting for peers. After
	// FlushPhase, DrainSelf is valid; full Drain requires AwaitPhase.
	FlushPhase() error
	// AwaitPhase is the second half of EndPhase: it blocks until every
	// live peer has flushed the same phase, guaranteeing complete
	// inboxes. Exactly one AwaitPhase must follow each FlushPhase.
	AwaitPhase() error
	// DrainSelf removes and returns the messages node n sent to itself
	// in the phase just flushed. Self-sends never cross a process
	// boundary, so they are complete as soon as the local FlushPhase
	// returns — the overlap window the two-pass tick computes in while
	// peer envelopes are still in flight. Valid between FlushPhase and
	// AwaitPhase (and after); messages it returns are not returned again
	// by Drain.
	DrainSelf(n cluster.NodeID) []cluster.Message
	// Close releases any resources (connections, goroutines).
	Close() error
}

// OwnerProc maps a partition to the worker process computing it when
// parts partitions are split across procs processes as contiguous blocks.
// It is the inverse of PartsOf.
func OwnerProc(part, parts, procs int) int {
	return ((part+1)*procs - 1) / parts
}

// PartsOf returns the contiguous block of partitions owned by one worker
// process: [proc·parts/procs, (proc+1)·parts/procs).
func PartsOf(proc, parts, procs int) []int {
	lo, hi := proc*parts/procs, (proc+1)*parts/procs
	out := make([]int, 0, hi-lo)
	for p := lo; p < hi; p++ {
		out = append(out, p)
	}
	return out
}
