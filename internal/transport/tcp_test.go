package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/cluster"
)

func init() {
	// Test payloads travel inside cluster.Message.Payload (an interface
	// field), so their concrete type must be gob-registered — production
	// runs register engine envelopes via internal/scenario the same way.
	gob.Register([]float64{})
}

type hubResult struct {
	finals []*FinalReport
	err    error
}

// blockAssign is the contiguous-block placement the coordinator computes
// for a fresh run.
func blockAssign(parts, procs int) []int {
	assign := make([]int, parts)
	for p := range assign {
		assign[p] = OwnerProc(p, parts, procs)
	}
	return assign
}

// miniCluster wires procs worker-side TCP transports to a running Hub over
// real loopback sockets and returns the transports, the worker-side framed
// conns (for final reports), and a result channel fed by a minimal control
// loop (collect finals; abort on error or disconnect — what distrib's
// coordinator does, minus recovery).
func miniCluster(t testing.TB, procs, parts int) ([]*TCP, []*Conn, chan hubResult) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })

	assign := blockAssign(parts, procs)
	hub := NewHub(parts, procs, assign)
	workers := make([]*Conn, procs)
	for i := 0; i < procs; i++ {
		d, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		a, err := lis.Accept()
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = NewConn(d)
		hub.Attach(i, NewConn(a))
	}
	trs := make([]*TCP, procs)
	for i := range trs {
		trs[i] = NewTCP(workers[i], i, procs, parts, assign, 1)
		tr := trs[i]
		t.Cleanup(func() { tr.Close() })
	}
	res := make(chan hubResult, 1)
	go func() {
		finals := make([]*FinalReport, procs)
		need := procs
		for ev := range hub.Events() {
			if ev.Frame == nil {
				hub.Close()
				res <- hubResult{nil, ev.Err}
				return
			}
			switch ev.Frame.Kind {
			case FrameFinal:
				if finals[ev.Src] == nil {
					need--
				}
				finals[ev.Src] = ev.Frame.Final
				if need == 0 {
					res <- hubResult{finals, nil}
					return
				}
			case FrameError:
				hub.Close()
				res <- hubResult{nil, errors.New(ev.Frame.Err)}
				return
			}
		}
	}()
	return trs, workers, res
}

func TestTCPRoutesAndMeters(t *testing.T) {
	trs, conns, res := miniCluster(t, 2, 4) // proc0 owns {0,1}, proc1 owns {2,3}

	pl := []float64{1, 2, 3}
	if err := trs[0].Send(cluster.Message{From: 0, To: 1, Tag: 5, Payload: pl, Bytes: 24}); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(cluster.Message{From: 1, To: 2, Tag: 5, Payload: pl, Bytes: 24}); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Send(cluster.Message{From: 3, To: 0, Tag: 5, Payload: pl, Bytes: 24}); err != nil {
		t.Fatal(err)
	}

	// EndPhase is a rendezvous: both processes must enter it.
	var wg sync.WaitGroup
	for _, tr := range trs {
		wg.Add(1)
		go func(tr *TCP) {
			defer wg.Done()
			if err := tr.EndPhase(); err != nil {
				t.Error(err)
			}
		}(tr)
	}
	wg.Wait()

	if msgs := trs[0].Drain(1); len(msgs) != 1 || msgs[0].Tag != 5 {
		t.Fatalf("proc0 part1 (local) = %v", msgs)
	}
	got := trs[0].Drain(0)
	if len(got) != 1 {
		t.Fatalf("proc0 part0 (remote) = %v", got)
	}
	if p, ok := got[0].Payload.([]float64); !ok || len(p) != 3 || p[2] != 3 {
		t.Fatalf("payload did not survive the wire: %#v", got[0].Payload)
	}
	if msgs := trs[1].Drain(2); len(msgs) != 1 {
		t.Fatalf("proc1 part2 (remote) = %v", msgs)
	}

	// Sender-side metering: local on proc0, one net send each.
	m0, m1 := trs[0].Metrics().Totals(), trs[1].Metrics().Totals()
	if m0.LocalMsgs != 1 || m0.SentMsgs != 1 || m1.SentMsgs != 1 {
		t.Errorf("metering: proc0 %+v proc1 %+v", m0, m1)
	}
	if m0.SentBytes+m1.SentBytes != 48 {
		t.Errorf("net bytes = %d, want 48", m0.SentBytes+m1.SentBytes)
	}

	// Clean shutdown: both workers report finals, the control loop
	// returns them.
	for i, c := range conns {
		rep := &FinalReport{Proc: i, Ticks: 1, Net: trs[i].Metrics().Totals()}
		if err := c.Send(&Frame{Kind: FrameFinal, Src: i, Gen: 1, Final: rep}); err != nil {
			t.Fatal(err)
		}
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.finals) != 2 || r.finals[0].Proc != 0 || r.finals[1].Proc != 1 {
		t.Fatalf("finals = %+v", r.finals)
	}
	net := r.finals[0].Net.SentBytes + r.finals[1].Net.SentBytes
	if net != 48 {
		t.Errorf("aggregated net bytes = %d, want 48", net)
	}
}

// A worker failure must not leave its peers blocked at a phase barrier:
// the control loop tears the run down (when it does not recover) and
// EndPhase returns an error.
func TestTCPErrorUnblocksPeers(t *testing.T) {
	trs, conns, res := miniCluster(t, 2, 2)

	done := make(chan error, 1)
	go func() { done <- trs[1].EndPhase() }()

	if err := conns[0].Send(&Frame{Kind: FrameError, Src: 0, Gen: 1, Err: "engine exploded"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// The peer must unblock with *some* error once the control loop
		// closes the connections.
		if err == nil {
			t.Fatal("EndPhase returned nil after worker failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer still blocked at phase barrier after worker failure")
	}
	if r := <-res; r.err == nil || !strings.Contains(r.err.Error(), "engine exploded") {
		t.Fatalf("hub err = %v", r.err)
	}
	// Subsequent sends fail fast instead of writing into a dead run.
	if err := trs[1].Send(cluster.Message{From: 1, To: 0}); err == nil {
		t.Error("send after peer failure should error")
	}
}

// Single-process distributed runs degenerate to local delivery with no
// peers to wait for.
func TestTCPSingleProc(t *testing.T) {
	trs, conns, res := miniCluster(t, 1, 3)
	if err := trs[0].Send(cluster.Message{From: 0, To: 2, Bytes: 8}); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].EndPhase(); err != nil {
		t.Fatal(err)
	}
	if msgs := trs[0].Drain(2); len(msgs) != 1 {
		t.Fatalf("drain = %v", msgs)
	}
	if m := trs[0].Metrics().Totals(); m.SentMsgs != 0 || m.LocalMsgs != 1 {
		t.Errorf("single-proc traffic should be all local: %+v", m)
	}
	conns[0].Send(&Frame{Kind: FrameFinal, Src: 0, Gen: 1, Final: &FinalReport{Proc: 0}})
	if r := <-res; r.err != nil {
		t.Fatal(r.err)
	}
}

// directPair wires one worker TCP transport straight to a test-driven
// coordinator conn (no hub), so control frames can be injected verbatim.
func directPair(t *testing.T, proc, procs, parts int, assign []int) (*TCP, *Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	d, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a, err := lis.Accept()
	if err != nil {
		t.Fatal(err)
	}
	coord := NewConn(a)
	t.Cleanup(func() { coord.Close() })
	tr := NewTCP(NewConn(d), proc, procs, parts, assign, 1)
	t.Cleanup(func() { tr.Close() })
	return tr, coord
}

// A restore frame must unblock a worker waiting at a phase barrier with
// ErrRestore, and Reset must fence off stale-generation traffic while
// replaying frames of the new generation that arrived early.
func TestTCPRestoreFencesGenerations(t *testing.T) {
	tr, coord := directPair(t, 1, 2, 2, []int{0, 1})

	// The worker blocks at a barrier that will never complete (its peer
	// is dead); the coordinator orders a restore instead.
	done := make(chan error, 1)
	go func() { done <- tr.EndPhase() }()

	// Early next-generation traffic from a peer that restored first: must
	// buffer, then replay at Reset.
	if err := coord.Send(&Frame{Kind: FrameData, Src: 0, Gen: 2, Phase: 1,
		Msg: cluster.Message{From: 0, To: 1, Tag: 9, Payload: []float64{4}, Bytes: 8}}); err != nil {
		t.Fatal(err)
	}
	// Stale old-generation traffic: must be invisible after Reset.
	if err := coord.Send(&Frame{Kind: FrameData, Src: 0, Gen: 1, Phase: 7,
		Msg: cluster.Message{From: 0, To: 1, Tag: 8, Payload: []float64{5}, Bytes: 8}}); err != nil {
		t.Fatal(err)
	}
	rest := &Restore{Gen: 2, Tick: 0, Assign: []int{0, 1}, Live: []bool{true, true}}
	if err := coord.Send(&Frame{Kind: FrameRestore, Gen: 2, Rest: rest}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrRestore) {
			t.Fatalf("EndPhase = %v, want ErrRestore", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restore did not unblock the phase barrier")
	}
	r, err := tr.AwaitRestore()
	if err != nil || r.Gen != 2 {
		t.Fatalf("AwaitRestore = %+v, %v", r, err)
	}
	tr.Reset(r)

	// After reset: phase 1 of gen 2; the buffered gen-2 frame is visible
	// once its phase ends, the stale gen-1 frame is gone.
	if err := coord.Send(&Frame{Kind: FrameEndPhase, Src: 0, Gen: 2, Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.EndPhase(); err != nil {
		t.Fatal(err)
	}
	msgs := tr.Drain(1)
	if len(msgs) != 1 || msgs[0].Tag != 9 {
		t.Fatalf("post-restore drain = %v, want only the gen-2 frame", msgs)
	}
}

// A pending restore wins over a pending directive: the worker must unwind
// to the restore path rather than act on a stale barrier answer.
func TestTCPRestoreBeatsDirective(t *testing.T) {
	tr, coord := directPair(t, 1, 2, 2, []int{0, 1})

	if err := coord.Send(&Frame{Kind: FrameDirective, Gen: 1, Dir: &Directive{Tick: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Send(&Frame{Kind: FrameRestore, Gen: 2,
		Rest: &Restore{Gen: 2, Assign: []int{0, 1}, Live: []bool{true, true}}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the restore is pending, then the directive must lose.
	if _, err := tr.AwaitRestore(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AwaitDirective(); !errors.Is(err, ErrRestore) {
		t.Fatalf("AwaitDirective = %v, want ErrRestore", err)
	}
}
