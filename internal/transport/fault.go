package transport

// SeverAt is a fault-injection Transport wrapper for recovery tests: it
// counts phase barriers and severs the wrapped transport — closing its
// coordinator connection — immediately before the Nth EndPhase. To the
// coordinator this is indistinguishable from the worker process dying
// mid-phase; to the worker every subsequent transport operation fails, so
// its session unwinds exactly like a crash while the daemon survives to
// accept a re-admission dial.
//
// Local-effect scenarios run two phases per tick (map, reduce₁) and
// non-local ones three, so Phase = 2·tick+1 severs a local-effect worker
// in the middle of that tick.
type SeverAt struct {
	Transport
	// Phase is the 1-based EndPhase call to sever at.
	Phase int

	n int
}

// EndPhase counts barriers and cuts the connection at the chosen one.
func (s *SeverAt) EndPhase() error {
	s.n++
	if s.n == s.Phase {
		_ = s.Transport.Close()
	}
	return s.Transport.EndPhase()
}
