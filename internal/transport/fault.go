package transport

import (
	"fmt"
	"sync"
)

// SeverAt is a fault-injection Transport wrapper for recovery tests: it
// counts phase barriers and severs the wrapped transport — closing its
// coordinator connection — immediately before the Nth FlushPhase (or, with
// Await set, between that phase's FlushPhase and its AwaitPhase). To the
// coordinator this is indistinguishable from the worker process dying
// mid-phase; to the worker every subsequent transport operation fails, so
// its session unwinds exactly like a crash while the daemon survives to
// accept a re-admission dial.
//
// Local-effect scenarios run two phases per tick (map, reduce₁) and
// non-local ones three, so Phase = 2·tick+1 severs a local-effect worker
// in the middle of that tick. With Await, the cut lands in the overlap
// window of the two-pass tick: the phase's sends (and marker) are already
// out, the interior pass has its inputs, but the boundary drain has not
// happened yet.
type SeverAt struct {
	Transport
	// Phase is the 1-based phase barrier to sever at.
	Phase int
	// Await severs between the chosen phase's FlushPhase and its
	// AwaitPhase instead of before the FlushPhase.
	Await bool

	n int
}

// FlushPhase counts barriers and, without Await, cuts the connection at
// the chosen one.
func (s *SeverAt) FlushPhase() error {
	s.n++
	if s.n == s.Phase && !s.Await {
		_ = s.Transport.Close()
	}
	return s.Transport.FlushPhase()
}

// AwaitPhase cuts the connection before waiting when Await is set and the
// chosen phase was just flushed.
func (s *SeverAt) AwaitPhase() error {
	if s.n == s.Phase && s.Await {
		_ = s.Transport.Close()
	}
	return s.Transport.AwaitPhase()
}

// EndPhase keeps the wrapper transparent for callers that do not split
// the barrier.
func (s *SeverAt) EndPhase() error {
	if err := s.FlushPhase(); err != nil {
		return err
	}
	return s.AwaitPhase()
}

// Staller is implemented by transports that can simulate a silently
// frozen process (TCP.Stall). StallAt uses it when available.
type Staller interface {
	Stall()
}

// StallAt is the silent twin of SeverAt: it freezes the wrapped transport
// immediately before the Nth FlushPhase (or, with Await set, between that
// phase's FlushPhase and AwaitPhase) *without* closing the socket — the
// failure mode of a SIGSTOPped or silently-partitioned worker. The
// coordinator sees no socket error, no EOF, nothing: every peer blocks at
// the phase barrier waiting for a marker that will never come, and only
// heartbeat/deadline liveness can break the hang. The Await variant is
// the nastier case for the overlapped tick: the frozen worker's marker
// *did* go out, so peers sail through the barrier and only the next one
// hangs. On transports without Stall support the wrapper blocks the call
// itself until Close.
type StallAt struct {
	Transport
	// Phase is the 1-based phase barrier to stall at.
	Phase int
	// Await stalls between the chosen phase's FlushPhase and its
	// AwaitPhase instead of before the FlushPhase.
	Await bool

	n      int
	once   sync.Once
	closed chan struct{}
}

// FlushPhase counts barriers and, without Await, freezes at the chosen one.
func (s *StallAt) FlushPhase() error {
	s.n++
	if s.n == s.Phase && !s.Await {
		if err := s.stall(); err != nil {
			return err
		}
	}
	return s.Transport.FlushPhase()
}

// AwaitPhase freezes before waiting when Await is set and the chosen
// phase was just flushed.
func (s *StallAt) AwaitPhase() error {
	if s.n == s.Phase && s.Await {
		if err := s.stall(); err != nil {
			return err
		}
	}
	return s.Transport.AwaitPhase()
}

// EndPhase keeps the wrapper transparent for callers that do not split
// the barrier.
func (s *StallAt) EndPhase() error {
	if err := s.FlushPhase(); err != nil {
		return err
	}
	return s.AwaitPhase()
}

func (s *StallAt) stall() error {
	if st, ok := s.Transport.(Staller); ok {
		st.Stall()
		return nil
	}
	s.init()
	<-s.closed // block like a frozen process until Close
	return fmt.Errorf("transport: stalled connection closed")
}

func (s *StallAt) init() {
	s.once.Do(func() { s.closed = make(chan struct{}) })
}

// Close releases a fallback-blocked barrier call along with the transport.
func (s *StallAt) Close() error {
	s.init()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	return s.Transport.Close()
}

// PeerFaulter is implemented by transports whose data plane has directed
// peer links that fault injection can break one at a time (TCP in mesh
// mode). CutPeer closes the outgoing link to dst; StallPeer makes its next
// send "succeed" on the wire but fail at the sender — the write-deadline
// failure mode that leaves a maybe-delivered frame behind.
type PeerFaulter interface {
	CutPeer(dst int)
	StallPeer(dst int)
}

// SeverPeerAt is SeverAt's peer-link twin for the mesh chaos suite: it
// counts phase barriers and, immediately before the Nth FlushPhase, cuts
// this process's outgoing peer link to Peer. The run must not notice —
// traffic to Peer falls back to the coordinator relay mid-epoch and the
// count-based barrier stays exact — which is precisely what the suite
// asserts (bit-identical final state, nonzero relayed data frames).
type SeverPeerAt struct {
	Transport
	// Peer is the destination process whose link is cut.
	Peer int
	// Phase is the 1-based phase barrier to cut at.
	Phase int

	n int
}

// FlushPhase counts barriers and cuts the peer link at the chosen one.
func (s *SeverPeerAt) FlushPhase() error {
	s.n++
	if s.n == s.Phase {
		if pf, ok := s.Transport.(PeerFaulter); ok {
			pf.CutPeer(s.Peer)
		}
	}
	return s.Transport.FlushPhase()
}

// EndPhase keeps the wrapper transparent for callers that do not split
// the barrier.
func (s *SeverPeerAt) EndPhase() error {
	if err := s.FlushPhase(); err != nil {
		return err
	}
	return s.AwaitPhase()
}

// StallPeerAt is SeverPeerAt's silent variant: before the Nth FlushPhase
// the outgoing link to Peer starts failing *after* each write reaches the
// socket, so the frame may arrive twice — once directly, once through the
// relay re-send — and the receiver's sequence dedup must keep exactly one.
type StallPeerAt struct {
	Transport
	// Peer is the destination process whose link goes bad.
	Peer int
	// Phase is the 1-based phase barrier to stall at.
	Phase int

	n int
}

// FlushPhase counts barriers and degrades the peer link at the chosen one.
func (s *StallPeerAt) FlushPhase() error {
	s.n++
	if s.n == s.Phase {
		if pf, ok := s.Transport.(PeerFaulter); ok {
			pf.StallPeer(s.Peer)
		}
	}
	return s.Transport.FlushPhase()
}

// EndPhase keeps the wrapper transparent for callers that do not split
// the barrier.
func (s *StallPeerAt) EndPhase() error {
	if err := s.FlushPhase(); err != nil {
		return err
	}
	return s.AwaitPhase()
}
