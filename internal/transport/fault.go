package transport

import (
	"fmt"
	"sync"
)

// SeverAt is a fault-injection Transport wrapper for recovery tests: it
// counts phase barriers and severs the wrapped transport — closing its
// coordinator connection — immediately before the Nth EndPhase. To the
// coordinator this is indistinguishable from the worker process dying
// mid-phase; to the worker every subsequent transport operation fails, so
// its session unwinds exactly like a crash while the daemon survives to
// accept a re-admission dial.
//
// Local-effect scenarios run two phases per tick (map, reduce₁) and
// non-local ones three, so Phase = 2·tick+1 severs a local-effect worker
// in the middle of that tick.
type SeverAt struct {
	Transport
	// Phase is the 1-based EndPhase call to sever at.
	Phase int

	n int
}

// EndPhase counts barriers and cuts the connection at the chosen one.
func (s *SeverAt) EndPhase() error {
	s.n++
	if s.n == s.Phase {
		_ = s.Transport.Close()
	}
	return s.Transport.EndPhase()
}

// Staller is implemented by transports that can simulate a silently
// frozen process (TCP.Stall). StallAt uses it when available.
type Staller interface {
	Stall()
}

// StallAt is the silent twin of SeverAt: it freezes the wrapped transport
// immediately before the Nth EndPhase *without* closing the socket — the
// failure mode of a SIGSTOPped or silently-partitioned worker. The
// coordinator sees no socket error, no EOF, nothing: every peer blocks at
// the phase barrier waiting for a marker that will never come, and only
// heartbeat/deadline liveness can break the hang. On transports without
// Stall support the wrapper blocks the EndPhase itself until Close.
type StallAt struct {
	Transport
	// Phase is the 1-based EndPhase call to stall at.
	Phase int

	n      int
	once   sync.Once
	closed chan struct{}
}

// EndPhase counts barriers and freezes at the chosen one.
func (s *StallAt) EndPhase() error {
	s.n++
	if s.n == s.Phase {
		if st, ok := s.Transport.(Staller); ok {
			st.Stall()
		} else {
			s.init()
			<-s.closed // block like a frozen process until Close
			return fmt.Errorf("transport: stalled connection closed")
		}
	}
	return s.Transport.EndPhase()
}

func (s *StallAt) init() {
	s.once.Do(func() { s.closed = make(chan struct{}) })
}

// Close releases a fallback-blocked EndPhase along with the transport.
func (s *StallAt) Close() error {
	s.init()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	return s.Transport.Close()
}
