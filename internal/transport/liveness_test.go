package transport

import (
	"net"
	"testing"
	"time"

	"github.com/bigreddata/brace/internal/cluster"
)

// connPair returns a framed loopback connection pair (coordinator side,
// worker side).
func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	d, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a, err := lis.Accept()
	if err != nil {
		t.Fatal(err)
	}
	coord, worker := NewConn(a), NewConn(d)
	t.Cleanup(func() { coord.Close(); worker.Close() })
	return coord, worker
}

// recvWithin reads one frame with a test deadline, returning nil on
// timeout.
func recvWithin(t *testing.T, c *Conn, d time.Duration) *Frame {
	t.Helper()
	type res struct {
		f   *Frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := c.Recv()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil
		}
		return r.f
	case <-time.After(d):
		return nil
	}
}

// A worker's transport reader answers heartbeat pings with pongs — no
// engine participation, so a worker deep in a compute phase still proves
// its process alive.
func TestPingAnsweredByPong(t *testing.T) {
	coord, worker := connPair(t)
	tcp := NewTCP(worker, 1, 2, 2, []int{0, 1}, 1)
	defer tcp.Close()

	if err := coord.Send(&Frame{Kind: FramePing, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, coord, 5*time.Second)
	if f == nil || f.Kind != FramePong {
		t.Fatalf("got %+v, want a Pong", f)
	}
	if f.Src != 1 {
		t.Errorf("pong.Src = %d, want 1", f.Src)
	}
}

// StallAt freezes the transport without any socket error: pings go
// unanswered, engine operations block, and only closing the connection
// (the coordinator's force-drop) unwinds them.
func TestStallAtSilencesWorker(t *testing.T) {
	coord, worker := connPair(t)
	tcp := NewTCP(worker, 0, 2, 2, []int{0, 1}, 1)
	defer tcp.Close()
	st := &StallAt{Transport: tcp, Phase: 1}

	done := make(chan error, 1)
	go func() { done <- st.EndPhase() }() // freezes at phase 1

	// Give the stall a moment to take effect, then ping: no pong.
	time.Sleep(50 * time.Millisecond)
	if err := coord.Send(&Frame{Kind: FramePing, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if f := recvWithin(t, coord, 300*time.Millisecond); f != nil {
		t.Fatalf("stalled worker answered with %+v", f)
	}
	select {
	case err := <-done:
		t.Fatalf("stalled EndPhase returned early: %v", err)
	default:
	}

	// A send while stalled blocks too; both unwind when the coordinator
	// closes the connection.
	sendDone := make(chan error, 1)
	go func() { sendDone <- tcp.Send(cluster.Message{From: 0, To: 1}) }()
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-sendDone:
		t.Fatalf("send on a stalled transport returned early: %v", err)
	default:
	}
	coord.Close()
	for i, ch := range []chan error{done, sendDone} {
		select {
		case err := <-ch:
			if err == nil {
				t.Errorf("op %d returned nil after force-drop, want the read error", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("op %d still blocked after the connection closed", i)
		}
	}
}

// A peer that stops draining its socket must not be able to block a
// Send forever once a write timeout is set — the coordinator's control
// loop depends on it.
func TestConnWriteTimeout(t *testing.T) {
	a, b := net.Pipe() // unbuffered: a write blocks until the peer reads
	defer a.Close()
	defer b.Close()
	c := NewConn(a)
	c.SetWriteTimeout(100 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- c.Send(&Frame{Kind: FramePing}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write to a non-reading peer succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write timeout never fired")
	}
}
