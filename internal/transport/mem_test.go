package transport

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/bigreddata/brace/internal/cluster"
)

func TestMemSendDrain(t *testing.T) {
	tr := NewMem(3)
	if tr.N() != 3 {
		t.Fatalf("N = %d", tr.N())
	}
	if err := tr.Send(cluster.Message{From: 0, To: 1, Tag: 7, Payload: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(cluster.Message{From: 2, To: 1, Tag: 7, Payload: "b", Bytes: 20}); err != nil {
		t.Fatal(err)
	}
	if tr.Pending(1) != 2 {
		t.Errorf("Pending = %d", tr.Pending(1))
	}
	if err := tr.EndPhase(); err != nil {
		t.Fatal(err)
	}
	msgs := tr.Drain(1)
	if len(msgs) != 2 {
		t.Fatalf("Drain len = %d", len(msgs))
	}
	if tr.Pending(1) != 0 || len(tr.Drain(1)) != 0 {
		t.Error("Drain did not clear inbox")
	}
	if err := tr.Send(cluster.Message{From: 0, To: 9}); err == nil {
		t.Error("send to unknown node accepted")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemLocalVsNetworkMetering(t *testing.T) {
	tr := NewMem(2)
	tr.Send(cluster.Message{From: 0, To: 0, Bytes: 100}) // collocated
	tr.Send(cluster.Message{From: 0, To: 1, Bytes: 300}) // network
	m := tr.Metrics().Totals()
	if m.LocalBytes != 100 || m.LocalMsgs != 1 {
		t.Errorf("local = %+v", m)
	}
	if m.SentBytes != 300 || m.SentMsgs != 1 || m.RecvBytes != 300 {
		t.Errorf("network = %+v", m)
	}
	frac := tr.Metrics().NetworkFraction()
	if math.Abs(frac-0.75) > 1e-12 {
		t.Errorf("NetworkFraction = %v, want 0.75", frac)
	}
	n0 := tr.Metrics().Node(0)
	if n0.SentBytes != 300 || n0.LocalBytes != 100 {
		t.Errorf("node0 = %+v", n0)
	}
	if !strings.Contains(tr.Metrics().String(), "net:") {
		t.Error("Metrics.String format")
	}
}

func TestMemConcurrentSends(t *testing.T) {
	tr := NewMem(4)
	var wg sync.WaitGroup
	const per = 500
	for from := 0; from < 4; from++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Send(cluster.Message{From: cluster.NodeID(f), To: cluster.NodeID((f + 1) % 4), Bytes: 1})
			}
		}(from)
	}
	wg.Wait()
	total := 0
	for n := 0; n < 4; n++ {
		total += len(tr.Drain(cluster.NodeID(n)))
	}
	if total != 4*per {
		t.Errorf("delivered %d, want %d", total, 4*per)
	}
}

func TestMemFailure(t *testing.T) {
	tr := NewMem(2)
	tr.Send(cluster.Message{From: 0, To: 1, Bytes: 5})
	tr.Fail(1)
	if !tr.Failed(1) {
		t.Error("Failed not reported")
	}
	if tr.Pending(1) != 0 {
		t.Error("failure should discard queued messages")
	}
	tr.Send(cluster.Message{From: 0, To: 1, Bytes: 5}) // dropped
	tr.Send(cluster.Message{From: 1, To: 0, Bytes: 5}) // dropped (from failed node)
	if tr.Pending(1) != 0 || tr.Pending(0) != 0 {
		t.Error("messages to/from failed node delivered")
	}
	tr.Recover(1)
	if tr.Failed(1) {
		t.Error("Recover did not clear failure")
	}
	tr.Send(cluster.Message{From: 0, To: 1, Bytes: 5})
	if tr.Pending(1) != 1 {
		t.Error("recovered node should receive")
	}
}

// Block assignment must be a bijection: every partition has exactly one
// owning process, and that process's block contains it.
func TestPartitionOwnershipConsistent(t *testing.T) {
	for procs := 1; procs <= 12; procs++ {
		for parts := procs; parts <= 24; parts++ {
			seen := make([]bool, parts)
			for proc := 0; proc < procs; proc++ {
				for _, p := range PartsOf(proc, parts, procs) {
					if seen[p] {
						t.Fatalf("parts=%d procs=%d: partition %d in two blocks", parts, procs, p)
					}
					seen[p] = true
					if got := OwnerProc(p, parts, procs); got != proc {
						t.Fatalf("parts=%d procs=%d: OwnerProc(%d) = %d, want %d", parts, procs, p, got, proc)
					}
				}
			}
			for p, ok := range seen {
				if !ok {
					t.Fatalf("parts=%d procs=%d: partition %d unowned", parts, procs, p)
				}
			}
		}
	}
}
