package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/bigreddata/brace/internal/cluster"
)

// ProtoVersion guards against mismatched coordinator/worker binaries; the
// handshake rejects any other value.
const ProtoVersion = 1

// maxFrame bounds a single frame so a corrupt length prefix cannot make a
// reader allocate unbounded memory.
const maxFrame = 1 << 30

// Hello is the handshake the coordinator sends a worker daemon right after
// dialing it. It carries everything a worker needs to reconstruct its slice
// of the job locally — the scenario registry makes the *data* the only
// thing that must cross the wire afterwards.
type Hello struct {
	Proto int
	// Proc is this worker process's index in [0, NumProcs); it owns the
	// partition block PartsOf(Proc, Partitions, NumProcs).
	Proc     int
	NumProcs int
	// Partitions is the total mapreduce worker (= partition) count.
	Partitions int
	// Scenario names a registry entry; Agents/Extent/Seed size it exactly
	// as on the coordinator, so every process derives the same initial
	// population and partitioning.
	Scenario   string
	Agents     int
	Extent     float64
	Seed       uint64
	Ticks      int
	EpochTicks int
	Index      string // kd | scan | grid
	Sequential bool
}

// FinalReport is a worker's end-of-run message: its owned values, how far
// it ran, and its traffic totals (senders meter, so summing across
// processes counts each delivery once).
type FinalReport struct {
	Proc   int
	Ticks  uint64
	Values any // []*engine.Envelope for scenario runs (gob-registered by internal/scenario)
	Net    cluster.NodeMetrics
}

// FrameKind discriminates wire frames.
type FrameKind uint8

// Frame kinds. Hello/Ack only appear during the handshake; Data, EndPhase,
// Final and Error make up the run.
const (
	FrameHello FrameKind = iota + 1
	FrameAck
	FrameData
	FrameEndPhase
	FrameFinal
	FrameError
)

// Frame is the unit of the wire protocol: one gob-encoded, length-prefixed
// record. Only the fields relevant to Kind are populated.
type Frame struct {
	Kind  FrameKind
	Src   int             // sending worker process
	Phase uint64          // EndPhase sequence number
	Msg   cluster.Message // Data payload
	Hello *Hello          // FrameHello
	Final *FinalReport    // FrameFinal
	Err   string          // FrameAck (empty = ok) and FrameError
}

// Conn frames a network connection: each Frame travels as a 4-byte
// big-endian length followed by its own independent gob stream, so frames
// can be produced by multiple writers (Send holds a lock) and relayed
// without shared encoder state.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex // serializes writes
}

// NewConn wraps a network connection for framed use.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c)}
}

// Send writes one frame. It is safe for concurrent use. Header and body
// go out in a single Write: with TCP_NODELAY (Go's default) two writes
// would emit two segments per frame on the latency-critical relay path.
func (fc *Conn) Send(f *Frame) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4)) // length prefix, filled in below
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, err := fc.c.Write(b); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// Recv reads one frame. Only one goroutine may call Recv at a time.
func (fc *Conn) Recv() (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return nil, err // io.EOF on clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return nil, fmt.Errorf("transport: short frame: %w", err)
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decode frame: %w", err)
	}
	return &f, nil
}

// Close closes the underlying connection.
func (fc *Conn) Close() error { return fc.c.Close() }

// RemoteAddr exposes the peer address for diagnostics.
func (fc *Conn) RemoteAddr() net.Addr { return fc.c.RemoteAddr() }
