package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/cluster"
)

// ProtoVersion guards against mismatched coordinator/worker binaries; the
// handshake rejects any other value. Version 2 added the coordinator-owned
// control plane: partition assignment travels in the handshake instead of
// being derived by block arithmetic, and epoch barriers exchange
// Stats/Directive/Checkpoint/Restore frames. Version 3 added liveness and
// incremental checkpoints: Ping/Pong heartbeat frames (answered by the
// worker's transport reader, so a frozen process goes silent) and
// differential checkpoint payloads (PartState.Delta against a
// coordinator-held base, with periodic full keyframes). Version 4 made
// workers multi-run: a worker daemon serves concurrent coordinator
// sessions (one per accepted connection, each its own framed stream), the
// handshake scopes a session to a run via Hello.RunID, and a draining
// worker finishes the in-flight epoch barrier before closing. Version 5
// added capability negotiation (Hello.Caps, answered by the worker's
// supported set on the Ack) and the peer-mesh data plane: per-destination
// end-of-phase markers with declared frame counts, per-(src,dst) data
// sequence numbers, worker registration (FrameRegister) and direct
// worker↔worker sessions (FramePeerHello).
const ProtoVersion = 5

// Capability names negotiated in the v5 handshake. The coordinator lists
// the capabilities the run requires in Hello.Caps; a worker that lacks any
// of them rejects the session with a CapabilityError, and echoes its full
// supported set on the Ack either way.
const (
	// CapMesh: the worker can serve direct peer sessions and run the
	// addressed per-peer phase accounting.
	CapMesh = "mesh"
	// CapIncrCkpt: the worker can ship differential checkpoint payloads
	// against a coordinator-held base.
	CapIncrCkpt = "incr-ckpt"
	// CapOverlapAwait: the worker's transport splits EndPhase into
	// FlushPhase/AwaitPhase so the engine can overlap interior compute
	// with boundary exchange.
	CapOverlapAwait = "overlap-await"
)

// SupportedCaps is this binary's full capability set.
func SupportedCaps() []string { return []string{CapMesh, CapIncrCkpt, CapOverlapAwait} }

// VersionError reports a handshake between binaries speaking different
// protocol versions.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("transport: protocol version %d, this end speaks %d", e.Got, e.Want)
}

// CapabilityError reports a handshake requiring capabilities this end does
// not implement.
type CapabilityError struct {
	Missing []string
}

func (e *CapabilityError) Error() string {
	return fmt.Sprintf("transport: required capabilities not supported: %v", e.Missing)
}

// MissingCaps returns the entries of want absent from have (order
// preserved); nil when every requirement is met.
func MissingCaps(want, have []string) []string {
	var missing []string
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, w)
		}
	}
	return missing
}

// maxFrame bounds a single frame so a corrupt length prefix cannot make a
// reader allocate unbounded memory.
const maxFrame = 1 << 30

// Hello is the handshake the coordinator sends a worker daemon right after
// dialing it. It carries everything a worker needs to reconstruct its slice
// of the job locally — the scenario registry makes the *data* the only
// thing that must cross the wire afterwards.
type Hello struct {
	Proto int
	// RunID scopes this session to one run when a worker daemon serves
	// several concurrent coordinators (the bracesimd fleet). Sessions are
	// per-connection, so frames never mix across runs; the ID exists for
	// logs and diagnostics. Empty for single-run CLI coordinators.
	RunID string
	// Proc is this worker process's index in [0, NumProcs).
	Proc     int
	NumProcs int
	// Partitions is the total mapreduce worker (= partition) count.
	Partitions int
	// Assign is the coordinator-owned placement: Assign[p] is the process
	// computing partition p. It must have Partitions entries. The
	// coordinator may change it mid-run through a Restore directive.
	Assign []int
	// Gen is the protocol generation the run is on. Fresh runs start at 1;
	// a Hello with Gen > 1 re-admits a worker into a run that already
	// recovered Gen-1 times — the worker must wait for its Restore frame
	// instead of ticking from zero.
	Gen int
	// LoadBalance tells workers to include agent positions in their epoch
	// statistics so the coordinator can run the 1-D balancer.
	LoadBalance bool
	// Scenario names a registry entry; Agents/Extent/Seed size it exactly
	// as on the coordinator, so every process derives the same initial
	// population and partitioning.
	Scenario   string
	Agents     int
	Extent     float64
	Seed       uint64
	Ticks      int
	EpochTicks int
	Index      string // kd | scan | grid
	Sequential bool
	// Part names the partitioning scheme: "" or "strips" for quantile
	// x-strips (the default, required for LoadBalance), "kd2d" for 2-D
	// recursive median splits. Every process derives the identical
	// function from the identical initial population, so only the name
	// crosses the wire. Gob-additive: a v4 coordinator that never sets it
	// interoperates with older captures.
	Part string
	// Caps are the capabilities this run requires of the worker (v5); a
	// worker missing any rejects the handshake with a CapabilityError.
	Caps []string
	// CacheSkin is the engine's Verlet-cache knob, forwarded so every
	// process resolves the identical skin (0 = auto-tune, the default).
	CacheSkin float64
	// Peers are the worker daemons' data-plane addresses, indexed by
	// process: with the mesh capability on, process i dials Peers[j]
	// directly for its j-bound envelope traffic. Empty in star runs.
	Peers []string
}

// PeerHello opens a direct worker↔worker data-plane session (v5, mesh):
// the dialing process announces which run, direction and generation the
// link carries; the accepting daemon routes it to the matching session's
// transport or rejects it. One link is one direction — process i's frames
// to process j — so each side's reader has a single writer peer.
type PeerHello struct {
	RunID string
	From  int
	To    int
	Gen   int
}

// Registration announces (and then keeps updating) a worker daemon on the
// coordinator's registry socket: the address the daemon serves sessions
// on, its capability set, and its self-reported load. The daemon streams
// updated Registration frames on the same connection as sessions and peer
// links come and go.
type Registration struct {
	Addr      string
	Caps      []string
	Sessions  int
	PeerLinks int
}

// FinalReport is a worker's end-of-run message: its owned values, how far
// it ran, and its traffic totals (senders meter, so summing across
// processes counts each delivery once).
type FinalReport struct {
	Proc   int
	Ticks  uint64
	Values any // []*engine.Envelope for scenario runs (gob-registered by internal/scenario)
	Net    cluster.NodeMetrics
}

// PartStats is one partition's contribution to an epoch statistics frame.
type PartStats struct {
	Part int
	// Visited is the partition's cumulative index-candidates counter, the
	// balancer's per-agent cost proxy.
	Visited int64
	// Xs are the x coordinates of the partition's owned agents; populated
	// only when the run load-balances (Hello.LoadBalance).
	Xs []float64
}

// EpochStats flows worker → coordinator at every epoch barrier: the
// statistics the master needs for load balancing, paired with the barrier
// tick so the coordinator can detect lockstep violations.
type EpochStats struct {
	Proc  int
	Tick  uint64
	Parts []PartStats
}

// Directive flows coordinator → worker in answer to a complete round of
// EpochStats: what the master decided at this barrier.
type Directive struct {
	// Tick echoes the barrier tick the directive answers.
	Tick uint64
	// NewCuts, when non-nil, are rebalanced strip boundaries the worker
	// must install before the next tick.
	NewCuts []float64
	// Checkpoint orders the worker to ship its partitions' state to the
	// coordinator (a CheckpointMsg) before continuing.
	Checkpoint bool
	// CkptSeq numbers the ordered checkpoint; workers echo it in
	// PartState.Base so the coordinator can verify a delta builds on the
	// base it actually holds.
	CkptSeq uint64
	// CkptFull forces a keyframe: every partition ships complete state
	// instead of a delta against the previous checkpoint.
	CkptFull bool
}

// PartState is one partition's checkpointed state on the wire: either a
// complete snapshot (Full) or a differential one — a field-level delta
// against the partition's state at checkpoint Base, encoded by
// engine.DiffPartition. The coordinator reassembles deltas into full
// state on arrival, so Restore frames always carry Full parts.
type PartState struct {
	Part    int
	Visited int64
	// Full marks Values as the complete partition state.
	Full   bool
	Values any // []*engine.Envelope (gob-registered by internal/scenario)
	// Base is the checkpoint sequence number the delta builds on; Delta
	// is the packed per-agent field delta (engine delta codec). Unset
	// when Full.
	Base  uint64
	Delta []byte
}

// CheckpointMsg flows worker → coordinator when a Directive orders a
// checkpoint: the worker's partitions at the barrier tick. The coordinator
// holds the assembled pieces so a dead worker's state survives it.
type CheckpointMsg struct {
	Proc  int
	Tick  uint64
	Parts []PartState
}

// Restore flows coordinator → worker after a failure (or to a worker
// re-admitted mid-run): rewind to the checkpoint tick under a new
// generation, with a possibly changed partition assignment. Frames of
// older generations still in flight are fenced off by Gen.
type Restore struct {
	Gen  int
	Tick uint64
	// Cuts restore the checkpoint's strip partitioning (nil: keep).
	Cuts []float64
	// Assign is the new partition→process placement.
	Assign []int
	// Live flags which processes are still part of the run; the phase
	// barrier counts markers from live peers only.
	Live []bool
	// Parts carry the checkpoint state for the partitions this worker now
	// owns. Restore parts are always Full.
	Parts []PartState
	// CkptSeq is the sequence number of the checkpoint being restored;
	// workers re-baseline their incremental-checkpoint tracker on it.
	CkptSeq uint64
	// Peers is the refreshed data-plane roster (mesh runs): recovery and
	// mid-run admissions change who serves which process index, so every
	// Restore re-announces it. Empty in star runs.
	Peers []string
}

// FrameKind discriminates wire frames.
type FrameKind uint8

// Frame kinds. Hello/Ack only appear during the handshake; Data, EndPhase,
// Final and Error make up the data plane; Stats, Directive, Checkpoint and
// Restore are the coordinator's control plane. Ping flows coordinator →
// worker on the heartbeat interval and is answered with a Pong by the
// worker's transport reader — not its engine — so liveness tracks the
// process, not the tick loop (the epoch-round deadline covers the latter).
const (
	FrameHello FrameKind = iota + 1
	FrameAck
	FrameData
	FrameEndPhase
	FrameFinal
	FrameError
	FrameStats
	FrameDirective
	FrameCheckpoint
	FrameRestore
	FramePing
	FramePong
	// FramePeerHello opens a direct worker↔worker data-plane link (v5
	// mesh); answered with a FrameAck like the coordinator handshake.
	FramePeerHello
	// FrameRegister announces a worker daemon to the coordinator-side
	// registry and streams its load updates.
	FrameRegister
)

// String names a frame kind for diagnostics. The switch is exhaustive by
// construction; bracevet's framecase analyzer keeps it that way when new
// kinds are added.
func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "Hello"
	case FrameAck:
		return "Ack"
	case FrameData:
		return "Data"
	case FrameEndPhase:
		return "EndPhase"
	case FrameFinal:
		return "Final"
	case FrameError:
		return "Error"
	case FrameStats:
		return "Stats"
	case FrameDirective:
		return "Directive"
	case FrameCheckpoint:
		return "Checkpoint"
	case FrameRestore:
		return "Restore"
	case FramePing:
		return "Ping"
	case FramePong:
		return "Pong"
	case FramePeerHello:
		return "PeerHello"
	case FrameRegister:
		return "Register"
	default:
		return fmt.Sprintf("FrameKind(%d)", uint8(k))
	}
}

// ProtocolError reports a frame kind arriving somewhere the wire protocol
// says it cannot — a version skew or a new kind some reader loop was
// never taught. Every FrameKind switch in the tree fails loudly with one
// of these (or routes the frame onward) rather than silently dropping it;
// bracevet's framecase analyzer enforces the pattern.
type ProtocolError struct {
	Kind  FrameKind
	Where string // which loop saw the frame
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("transport: protocol violation: unexpected %v frame in %s", e.Kind, e.Where)
}

// Frame is the unit of the wire protocol: one gob-encoded, length-prefixed
// record. Only the fields relevant to Kind are populated.
type Frame struct {
	Kind  FrameKind
	Src   int    // sending worker process
	Gen   int    // protocol generation; receivers drop stale generations
	Phase uint64 // EndPhase sequence number
	// Dst addresses a frame to one destination process (v5). A Data
	// frame's Dst names the process owning Msg.To so relays route without
	// consulting the assignment; an EndPhase marker's Dst names the peer
	// whose inbox it closes, with -1 meaning "progress note only" (the
	// mesh's control-plane copy to the coordinator).
	Dst int
	// Count, on an EndPhase marker, declares how many Data frames Src
	// addressed to Dst this phase; the receiver's barrier completes only
	// after that many unique frames arrived, whichever path they took.
	Count uint32
	// Seq orders Data frames per (Src → owning process) within a
	// generation, starting at 1; receivers deduplicate on it so a frame
	// resent over the relay after a peer-link failure applies only once.
	Seq   uint64
	Msg   cluster.Message
	Hello *Hello
	Final *FinalReport
	Stats *EpochStats
	Dir   *Directive
	Ckpt  *CheckpointMsg
	Rest  *Restore
	Peer  *PeerHello    // FramePeerHello
	Reg   *Registration // FrameRegister
	Caps  []string      // FrameAck: the responder's supported capability set
	Err   string        // FrameAck (empty = ok) and FrameError
}

// Conn frames a network connection: each Frame travels as a 4-byte
// big-endian length followed by its own independent gob stream, so frames
// can be produced by multiple writers (Send holds a lock) and relayed
// without shared encoder state.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex // serializes writes; also guards wt
	wt time.Duration
}

// NewConn wraps a network connection for framed use.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c)}
}

// SetWriteTimeout bounds every subsequent Send. A peer that stops draining
// its socket — a SIGSTOPped process, a silent partition — eventually fills
// the kernel buffers and would otherwise block the writer forever; with a
// timeout the blocked Send fails instead, which the coordinator treats as
// a worker failure. Zero disables the bound.
func (fc *Conn) SetWriteTimeout(d time.Duration) {
	fc.mu.Lock()
	fc.wt = d
	fc.mu.Unlock()
}

// Send writes one frame. It is safe for concurrent use. Header and body
// go out in a single Write: with TCP_NODELAY (Go's default) two writes
// would emit two segments per frame on the latency-critical relay path.
func (fc *Conn) Send(f *Frame) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4)) // length prefix, filled in below
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.wt > 0 {
		fc.c.SetWriteDeadline(time.Now().Add(fc.wt))
		defer fc.c.SetWriteDeadline(time.Time{})
	}
	if _, err := fc.c.Write(b); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// Recv reads one frame. Only one goroutine may call Recv at a time.
func (fc *Conn) Recv() (*Frame, error) {
	f, _, err := fc.RecvSized()
	return f, err
}

// RecvSized reads one frame and also reports its size on the wire
// (length prefix included) — the coordinator meters checkpoint traffic
// with it. Only one goroutine may call Recv/RecvSized at a time.
func (fc *Conn) RecvSized() (*Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return nil, 0, err // io.EOF on clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return nil, 0, fmt.Errorf("transport: short frame: %w", err)
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, 0, fmt.Errorf("transport: decode frame: %w", err)
	}
	return &f, int(n) + 4, nil
}

// Close closes the underlying connection.
func (fc *Conn) Close() error { return fc.c.Close() }

// RemoteAddr exposes the peer address for diagnostics.
func (fc *Conn) RemoteAddr() net.Addr { return fc.c.RemoteAddr() }
