package transport

import (
	"fmt"
	"sync"

	"github.com/bigreddata/brace/internal/cluster"
)

// Mem is the in-process Transport: worker "nodes" are goroutines and every
// inbox lives in main memory. Payloads stay in memory (this is a simulated
// network); Message.Bytes carries the size the payload would occupy on the
// wire, supplied by the sender, so the cost model can charge transfer time
// without serializing.
type Mem struct {
	mu      sync.Mutex
	inbox   [][]cluster.Message
	metrics *cluster.Metrics
	failed  []bool
}

var _ Transport = (*Mem)(nil)

// NewMem creates an in-memory transport connecting n nodes.
func NewMem(n int) *Mem {
	return &Mem{
		inbox:   make([][]cluster.Message, n),
		metrics: cluster.NewMetrics(n),
		failed:  make([]bool, n),
	}
}

// N returns the number of nodes.
func (t *Mem) N() int { return len(t.inbox) }

// Send enqueues a message for the destination node. Sends to or from a
// failed node are dropped, mimicking a crashed worker; the runtime notices
// the failure at the next barrier.
func (t *Mem) Send(m cluster.Message) error {
	if m.To < 0 || int(m.To) >= len(t.inbox) {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed[m.From] || t.failed[m.To] {
		return nil // silently lost, like a dead TCP peer
	}
	t.inbox[m.To] = append(t.inbox[m.To], m)
	t.metrics.RecordSend(m.From, m.To, m.Bytes, m.From == m.To)
	return nil
}

// Drain removes and returns all messages queued for node n.
func (t *Mem) Drain(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	msgs := t.inbox[n]
	t.inbox[n] = nil
	return msgs
}

// Pending returns the number of queued messages for node n.
func (t *Mem) Pending(n cluster.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inbox[n])
}

// Fail marks a node as crashed and discards its queued messages.
func (t *Mem) Fail(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = true
	t.inbox[n] = nil
}

// Recover clears a node's failed status.
func (t *Mem) Recover(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = false
}

// Failed reports whether node n is currently marked crashed.
func (t *Mem) Failed(n cluster.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[n]
}

// Metrics returns the transport's traffic counters.
func (t *Mem) Metrics() *cluster.Metrics { return t.metrics }

// DrainSelf removes and returns the messages node n sent to itself.
func (t *Mem) DrainSelf(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []cluster.Message
	for _, m := range t.inbox[n] {
		if m.From == n {
			out = append(out, m)
		} else {
			keep = append(keep, m)
		}
	}
	t.inbox[n] = keep
	return out
}

// EndPhase is a no-op: in-memory sends are visible immediately.
func (t *Mem) EndPhase() error { return nil }

// FlushPhase is a no-op.
func (t *Mem) FlushPhase() error { return nil }

// AwaitPhase is a no-op.
func (t *Mem) AwaitPhase() error { return nil }

// Close is a no-op.
func (t *Mem) Close() error { return nil }
