package transport

import (
	"testing"

	"github.com/bigreddata/brace/internal/cluster"
)

// BenchmarkTransport measures one phase of cross-partition traffic — a
// batch of sends, the phase flush, and the drain — on both transports, so
// the README's transport baseline (messages/s and bytes/s) has a
// like-for-like mem vs loopback-TCP datapoint. The TCP variant pays for
// gob encoding twice (worker→hub, hub→worker) plus two socket hops, which
// is the honest cost of the star topology.
func BenchmarkTransport(b *testing.B) {
	const batch = 64
	payload := make([]float64, 128)
	bytesPer := 8 * len(payload)

	b.Run("mem", func(b *testing.B) {
		tr := NewMem(2)
		b.SetBytes(int64(batch * bytesPer))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				tr.Send(cluster.Message{From: 0, To: 1, Tag: 1, Payload: payload, Bytes: bytesPer})
			}
			if err := tr.EndPhase(); err != nil {
				b.Fatal(err)
			}
			tr.Drain(1)
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	})

	b.Run("tcp-loopback", func(b *testing.B) {
		trs, conns, res := miniCluster(b, 2, 2) // proc0 owns {0}, proc1 owns {1}
		peerDone := make(chan error, 1)
		go func() {
			for i := 0; i < b.N; i++ {
				if err := trs[1].EndPhase(); err != nil {
					peerDone <- err
					return
				}
				trs[1].Drain(1)
			}
			peerDone <- nil
		}()
		b.SetBytes(int64(batch * bytesPer))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if err := trs[0].Send(cluster.Message{From: 0, To: 1, Tag: 1, Payload: payload, Bytes: bytesPer}); err != nil {
					b.Fatal(err)
				}
			}
			if err := trs[0].EndPhase(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := <-peerDone; err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		for i, c := range conns {
			c.Send(&Frame{Kind: FrameFinal, Src: i, Final: &FinalReport{Proc: i}})
		}
		if r := <-res; r.err != nil {
			b.Fatal(r.err)
		}
	})
}
