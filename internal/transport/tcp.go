package transport

import (
	"fmt"
	"io"
	"sync"

	"github.com/bigreddata/brace/internal/cluster"
)

// TCP is the Transport a worker process runs the mapreduce runtime on in a
// distributed (multi-process) BRACE cluster. The process computes the
// partition block PartsOf(proc, parts, procs); a send between two of its
// own partitions stays in memory (collocation), a send to any other
// partition travels as a Data frame through the coordinator to the owning
// process.
//
// Phase completeness uses end-of-phase markers instead of shared-memory
// barriers: EndPhase sends a marker after this process's sends and blocks
// until the markers of all procs−1 peers arrive. The coordinator relays
// frames preserving per-source order and TCP delivers in order, so once a
// peer's marker is here, all of its Data frames for the phase are too.
type TCP struct {
	proc, procs int
	parts       int
	fc          *Conn
	metrics     *cluster.Metrics

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   [][]phasedMsg
	failed  []bool
	phase   uint64
	markers map[uint64]int // phase → peer markers received
	readErr error          // terminal reader state; sticky
}

// phasedMsg tags an inbox entry with the phase it was sent in. A fast peer
// may race ahead: once its EndPhase(k) returns (it has this process's
// marker k) it starts sending phase-k+1 data, which can arrive before this
// process has drained phase k. Phase tags keep such early arrivals queued
// until their own drain.
type phasedMsg struct {
	phase uint64
	m     cluster.Message
}

var _ Transport = (*TCP)(nil)

// NewTCP wraps an already-handshaken coordinator connection as the
// transport for worker process proc of procs, computing parts partitions
// total across all processes. It starts the connection's reader goroutine,
// so the caller must not Recv on fc afterwards.
func NewTCP(fc *Conn, proc, procs, parts int) *TCP {
	t := &TCP{
		proc:    proc,
		procs:   procs,
		parts:   parts,
		fc:      fc,
		metrics: cluster.NewMetrics(parts),
		inbox:   make([][]phasedMsg, parts),
		failed:  make([]bool, parts),
		markers: make(map[uint64]int),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.readLoop()
	return t
}

func (t *TCP) readLoop() {
	for {
		f, err := t.fc.Recv()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("transport: coordinator closed connection")
			}
			t.fail(err)
			return
		}
		switch f.Kind {
		case FrameData:
			t.mu.Lock()
			m := f.Msg
			if m.To >= 0 && int(m.To) < len(t.inbox) && !t.failed[m.To] {
				t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: f.Phase, m: m})
			}
			t.mu.Unlock()
		case FrameEndPhase:
			t.mu.Lock()
			t.markers[f.Phase]++
			t.cond.Broadcast()
			t.mu.Unlock()
		case FrameError:
			t.fail(fmt.Errorf("transport: peer error: %s", f.Err))
			return
		default:
			t.fail(fmt.Errorf("transport: unexpected frame kind %d mid-run", f.Kind))
			return
		}
	}
}

func (t *TCP) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.readErr == nil {
		t.readErr = err
	}
	t.cond.Broadcast()
}

// N returns the total partition count.
func (t *TCP) N() int { return t.parts }

// Proc returns this process's index.
func (t *TCP) Proc() int { return t.proc }

// Send enqueues locally when the destination partition is owned by this
// process and ships a Data frame otherwise.
func (t *TCP) Send(m cluster.Message) error {
	if m.To < 0 || int(m.To) >= t.parts {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	local := OwnerProc(int(m.To), t.parts, t.procs) == t.proc
	t.mu.Lock()
	if err := t.readErr; err != nil {
		t.mu.Unlock()
		return err
	}
	if t.failed[m.From] || t.failed[m.To] {
		t.mu.Unlock()
		return nil
	}
	// Sends happen inside the phase that the *next* EndPhase ends.
	phase := t.phase + 1
	// Collocation: traffic between partitions of the same process never
	// touches the wire and is metered as local.
	t.metrics.RecordSend(m.From, m.To, m.Bytes, local)
	if local {
		t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: phase, m: m})
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return t.fc.Send(&Frame{Kind: FrameData, Src: t.proc, Phase: phase, Msg: m})
}

// Drain removes and returns the messages queued for partition n that
// belong to the just-ended phase (or earlier). Arrivals a racing-ahead
// peer already sent for the next phase stay queued for their own drain.
func (t *TCP) Drain(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []phasedMsg
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			out = append(out, pm.m)
		} else {
			keep = append(keep, pm)
		}
	}
	t.inbox[n] = keep
	return out
}

// Pending returns the number of queued messages for partition n that a
// Drain right now would return — early arrivals for a not-yet-ended phase
// are excluded, keeping Pending and Drain consistent.
func (t *TCP) Pending(n cluster.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	count := 0
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			count++
		}
	}
	return count
}

// Fail marks a partition crashed in this process's local bookkeeping.
// Multi-process failure injection is not supported: distributed runs
// reject FailurePlans, so this only serves the Transport contract.
func (t *TCP) Fail(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = true
	t.inbox[n] = nil
}

// Recover clears a partition's local failed mark.
func (t *TCP) Recover(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = false
}

// Failed reports the local failed mark for partition n.
func (t *TCP) Failed(n cluster.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[n]
}

// Metrics returns this process's traffic counters.
func (t *TCP) Metrics() *cluster.Metrics { return t.metrics }

// EndPhase sends this process's end-of-phase marker and blocks until the
// matching marker of every peer process has arrived, at which point all
// Data frames of the phase are guaranteed to be in the local inboxes.
func (t *TCP) EndPhase() error {
	t.mu.Lock()
	t.phase++
	phase := t.phase
	t.mu.Unlock()
	if t.procs > 1 {
		if err := t.fc.Send(&Frame{Kind: FrameEndPhase, Src: t.proc, Phase: phase}); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.markers[phase] < t.procs-1 && t.readErr == nil {
		t.cond.Wait()
	}
	if t.readErr != nil {
		return t.readErr
	}
	delete(t.markers, phase)
	return nil
}

// Close tears down the coordinator connection; the reader goroutine exits
// on the resulting read error.
func (t *TCP) Close() error { return t.fc.Close() }
