package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/cluster"
)

// ErrRestore is returned by a blocked or attempted transport operation
// when the coordinator has ordered a restore: the worker must unwind its
// tick loop, apply the pending Restore (AwaitRestore + Reset), and resume
// from the checkpoint.
var ErrRestore = errors.New("transport: restore directive pending")

// TCP is the Transport a worker process runs the mapreduce runtime on in a
// distributed (multi-process) BRACE cluster. The process computes the
// partitions the coordinator assigned to it; a send between two of its own
// partitions stays in memory (collocation), a send to any other partition
// travels as a Data frame through the coordinator to the owning process.
// The assignment is coordinator-owned state: it arrives in the handshake
// and can change mid-run through a Restore.
//
// Phase completeness uses end-of-phase markers instead of shared-memory
// barriers: EndPhase sends a marker after this process's sends and blocks
// until the markers of all live peers arrive. The coordinator relays
// frames preserving per-source order and TCP delivers in order, so once a
// peer's marker is here, all of its Data frames for the phase are too.
//
// Every data-plane frame is stamped with the run's protocol generation.
// After a failure the coordinator bumps the generation and restores
// everyone from the last checkpoint; frames from older generations still
// in flight are dropped, and frames from a generation this process has not
// reached yet (a peer that restored first and raced ahead) are buffered
// and replayed by Reset.
type TCP struct {
	proc, procs int
	parts       int
	fc          *Conn
	metrics     *cluster.Metrics

	mu        sync.Mutex
	cond      *sync.Cond
	gen       int
	assign    []int
	live      []bool
	inbox     [][]phasedMsg
	failed    []bool
	phase     uint64
	markers   map[uint64]int // phase → peer markers received (this gen)
	future    []*Frame       // data-plane frames from a generation ahead
	directive *Directive     // pending epoch directive (slot of one)
	restore   *Restore       // pending restore; wins over everything
	readErr   error          // terminal reader state; sticky
	stalled   bool           // fault injection: process frozen (StallAt)
	lastRecv  time.Time      // time of the last frame from the coordinator
}

// phasedMsg tags an inbox entry with the phase it was sent in. A fast peer
// may race ahead: once its EndPhase(k) returns (it has this process's
// marker k) it starts sending phase-k+1 data, which can arrive before this
// process has drained phase k. Phase tags keep such early arrivals queued
// until their own drain.
type phasedMsg struct {
	phase uint64
	m     cluster.Message
}

var _ Transport = (*TCP)(nil)

// NewTCP wraps an already-handshaken coordinator connection as the
// transport for worker process proc of procs, computing the partitions
// assign maps to it out of parts total. gen is the generation the process
// joins at (1 for a fresh run; a re-admitted worker passes Hello.Gen-1 so
// that the new generation's traffic buffers until its Restore applies).
// It starts the connection's reader goroutine, so the caller must not
// Recv on fc afterwards.
func NewTCP(fc *Conn, proc, procs, parts int, assign []int, gen int) *TCP {
	if len(assign) != parts {
		panic(fmt.Sprintf("transport: assignment covers %d partitions, want %d", len(assign), parts))
	}
	live := make([]bool, procs)
	for i := range live {
		live[i] = true
	}
	t := &TCP{
		proc:     proc,
		procs:    procs,
		parts:    parts,
		fc:       fc,
		metrics:  cluster.NewMetrics(parts),
		gen:      gen,
		assign:   append([]int(nil), assign...),
		live:     live,
		inbox:    make([][]phasedMsg, parts),
		failed:   make([]bool, parts),
		markers:  make(map[uint64]int),
		lastRecv: time.Now(),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.readLoop()
	return t
}

func (t *TCP) readLoop() {
	for {
		f, err := t.fc.Recv()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("transport: coordinator closed connection")
			}
			t.failConn(err)
			return
		}
		t.mu.Lock()
		t.lastRecv = time.Now()
		if t.stalled {
			// A stalled process neither reacts to frames nor answers
			// heartbeats; the socket keeps draining (the kernel would)
			// but nothing reaches the engine. The coordinator must
			// detect the silence and force-drop this worker.
			t.mu.Unlock()
			continue
		}
		t.mu.Unlock()
		switch f.Kind {
		case FrameData, FrameEndPhase, FrameDirective:
			t.mu.Lock()
			switch {
			case f.Gen == t.gen:
				t.apply(f)
			case f.Gen > t.gen:
				t.future = append(t.future, f)
			}
			t.mu.Unlock()
		case FramePing:
			// Answered from the reader, not the engine: a Pong proves the
			// *process* is alive even mid-phase. The epoch-round deadline,
			// not the heartbeat, covers a live process whose engine hangs.
			if err := t.fc.Send(&Frame{Kind: FramePong, Src: t.proc, Gen: f.Gen}); err != nil {
				t.failConn(err)
				return
			}
		case FrameRestore:
			t.mu.Lock()
			if f.Rest != nil && f.Rest.Gen > t.gen {
				t.restore = f.Rest
				t.cond.Broadcast()
			}
			t.mu.Unlock()
		case FrameError:
			t.failConn(fmt.Errorf("transport: peer error: %s", f.Err))
			return
		default:
			t.failConn(fmt.Errorf("transport: unexpected frame kind %d mid-run", f.Kind))
			return
		}
	}
}

// Stall freezes the transport's engine-facing surface, simulating a
// SIGSTOPped or livelocked worker process without killing it: subsequent
// Send/EndPhase/Control/Await* calls block until the connection dies, no
// heartbeat Pongs are answered, and incoming frames are discarded. Unlike
// SeverAt's closed socket, the coordinator gets no error to react to —
// only its own liveness machinery can notice. The stall ends when the
// coordinator closes the connection (force-drop), which unwinds every
// blocked call with the read error so the daemon can accept a rejoin.
func (t *TCP) Stall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stalled = true
	t.cond.Broadcast()
}

// LastRecv reports when the coordinator last sent anything — the worker
// side's liveness evidence (with heartbeats on, a healthy coordinator is
// never silent for long).
func (t *TCP) LastRecv() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastRecv
}

// awaitUnstallLocked parks the calling engine operation while the
// transport is stalled. Caller holds t.mu; returns the terminal error
// once the connection dies.
func (t *TCP) awaitUnstallLocked() error {
	for t.stalled && t.readErr == nil {
		t.cond.Wait()
	}
	if t.readErr != nil {
		return t.readErr
	}
	return nil
}

// apply files one current-generation frame. Caller holds t.mu.
func (t *TCP) apply(f *Frame) {
	switch f.Kind {
	case FrameData:
		m := f.Msg
		if m.To >= 0 && int(m.To) < len(t.inbox) && !t.failed[m.To] {
			t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: f.Phase, m: m})
		}
	case FrameEndPhase:
		t.markers[f.Phase]++
		t.cond.Broadcast()
	case FrameDirective:
		t.directive = f.Dir
		t.cond.Broadcast()
	}
}

func (t *TCP) failConn(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.readErr == nil {
		t.readErr = err
	}
	t.cond.Broadcast()
}

// N returns the total partition count.
func (t *TCP) N() int { return t.parts }

// Proc returns this process's index.
func (t *TCP) Proc() int { return t.proc }

// liveProcs counts processes still in the run. Caller holds t.mu.
func (t *TCP) liveProcs() int {
	n := 0
	for _, l := range t.live {
		if l {
			n++
		}
	}
	return n
}

// Send enqueues locally when the destination partition is assigned to this
// process and ships a Data frame otherwise.
func (t *TCP) Send(m cluster.Message) error {
	if m.To < 0 || int(m.To) >= t.parts {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	if t.restore != nil {
		t.mu.Unlock()
		return ErrRestore
	}
	if err := t.readErr; err != nil {
		t.mu.Unlock()
		return err
	}
	if t.failed[m.From] || t.failed[m.To] {
		t.mu.Unlock()
		return nil
	}
	local := t.assign[m.To] == t.proc
	// Sends happen inside the phase that the *next* EndPhase ends.
	phase := t.phase + 1
	gen := t.gen
	// Collocation: traffic between partitions of the same process never
	// touches the wire and is metered as local.
	t.metrics.RecordSend(m.From, m.To, m.Bytes, local)
	if local {
		t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: phase, m: m})
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return t.fc.Send(&Frame{Kind: FrameData, Src: t.proc, Gen: gen, Phase: phase, Msg: m})
}

// Drain removes and returns the messages queued for partition n that
// belong to the just-ended phase (or earlier). Arrivals a racing-ahead
// peer already sent for the next phase stay queued for their own drain.
func (t *TCP) Drain(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []phasedMsg
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			out = append(out, pm.m)
		} else {
			keep = append(keep, pm)
		}
	}
	t.inbox[n] = keep
	return out
}

// Pending returns the number of queued messages for partition n that a
// Drain right now would return — early arrivals for a not-yet-ended phase
// are excluded, keeping Pending and Drain consistent.
func (t *TCP) Pending(n cluster.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	count := 0
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			count++
		}
	}
	return count
}

// Fail marks a partition crashed in this process's local bookkeeping;
// it only serves the Transport contract (multi-process failure handling
// is the coordinator's job, not the injection API's).
func (t *TCP) Fail(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = true
	t.inbox[n] = nil
}

// Recover clears a partition's local failed mark.
func (t *TCP) Recover(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = false
}

// Failed reports the local failed mark for partition n.
func (t *TCP) Failed(n cluster.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[n]
}

// Metrics returns this process's traffic counters.
func (t *TCP) Metrics() *cluster.Metrics { return t.metrics }

// EndPhase sends this process's end-of-phase marker and blocks until the
// matching marker of every live peer process has arrived, at which point
// all Data frames of the phase are guaranteed to be in the local inboxes.
// It returns ErrRestore if the coordinator orders a restore while waiting.
func (t *TCP) EndPhase() error {
	if err := t.FlushPhase(); err != nil {
		return err
	}
	return t.AwaitPhase()
}

// FlushPhase advances the local phase counter and sends this process's
// end-of-phase marker without waiting for peers. Self-sends of the phase
// (collocated, already in the local inboxes) become drainable through
// DrainSelf the moment it returns.
func (t *TCP) FlushPhase() error {
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	if t.restore != nil {
		t.mu.Unlock()
		return ErrRestore
	}
	if err := t.readErr; err != nil {
		t.mu.Unlock()
		return err
	}
	t.phase++
	phase := t.phase
	gen := t.gen
	peers := t.liveProcs() > 1
	t.mu.Unlock()
	if peers {
		return t.fc.Send(&Frame{Kind: FrameEndPhase, Src: t.proc, Gen: gen, Phase: phase})
	}
	return nil
}

// AwaitPhase blocks until the end-of-phase marker of every live peer has
// arrived for the phase the preceding FlushPhase ended. In-order relay
// then guarantees all Data frames of the phase are in the local inboxes.
func (t *TCP) AwaitPhase() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	phase := t.phase
	for t.markers[phase] < t.liveProcs()-1 && t.readErr == nil && t.restore == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return t.awaitUnstallLocked()
	}
	switch {
	case t.restore != nil:
		return ErrRestore
	case t.readErr != nil:
		return t.readErr
	}
	delete(t.markers, phase)
	return nil
}

// DrainSelf removes and returns partition n's messages to itself from the
// phase the last FlushPhase ended (or earlier). All of a partition's sends
// to itself are collocated, so they are complete without waiting for any
// peer marker.
func (t *TCP) DrainSelf(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []phasedMsg
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase && pm.m.From == n {
			out = append(out, pm.m)
		} else {
			keep = append(keep, pm)
		}
	}
	t.inbox[n] = keep
	return out
}

// Control sends a control-plane frame (stats, checkpoint, final report),
// stamped with this process's index and current generation.
func (t *TCP) Control(f *Frame) error {
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	f.Src = t.proc
	f.Gen = t.gen
	t.mu.Unlock()
	return t.fc.Send(f)
}

// AwaitDirective blocks until the coordinator answers the epoch barrier.
// It returns ErrRestore if a restore arrives first (a peer died at or
// around the barrier), or the terminal read error.
func (t *TCP) AwaitDirective() (*Directive, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.directive == nil && t.restore == nil && t.readErr == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return nil, t.awaitUnstallLocked()
	}
	switch {
	case t.restore != nil:
		return nil, ErrRestore
	case t.directive != nil:
		d := t.directive
		t.directive = nil
		return d, nil
	}
	return nil, t.readErr
}

// AwaitRestore blocks until a restore is pending (returning it without
// clearing it — Reset does that) or the connection reaches a terminal
// state. A worker that finished its ticks parks here: either the
// coordinator closes the connection (run complete) or a late failure
// rewinds it back into the tick loop.
func (t *TCP) AwaitRestore() (*Restore, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.restore == nil && t.readErr == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return nil, t.awaitUnstallLocked()
	}
	if t.restore != nil {
		return t.restore, nil
	}
	return nil, t.readErr
}

// Reset installs a restore: new generation, assignment and live set; phase
// counters, markers, inboxes and any stale directive are discarded, and
// buffered frames of the new generation (from peers that restored first)
// are replayed. The engine state itself is restored by the caller.
func (t *TCP) Reset(r *Restore) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen = r.Gen
	t.assign = append([]int(nil), r.Assign...)
	t.live = append([]bool(nil), r.Live...)
	t.phase = 0
	t.markers = make(map[uint64]int)
	for i := range t.inbox {
		t.inbox[i] = nil
	}
	t.directive = nil
	if t.restore != nil && t.restore.Gen <= r.Gen {
		t.restore = nil
	}
	var keep []*Frame
	for _, f := range t.future {
		switch {
		case f.Gen == r.Gen:
			t.apply(f)
		case f.Gen > r.Gen:
			keep = append(keep, f)
		}
	}
	t.future = keep
	t.cond.Broadcast()
}

// Close tears down the coordinator connection; the reader goroutine exits
// on the resulting read error.
func (t *TCP) Close() error { return t.fc.Close() }
