package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bigreddata/brace/internal/cluster"
)

// ErrRestore is returned by a blocked or attempted transport operation
// when the coordinator has ordered a restore: the worker must unwind its
// tick loop, apply the pending Restore (AwaitRestore + Reset), and resume
// from the checkpoint.
var ErrRestore = errors.New("transport: restore directive pending")

// peerDialTimeout bounds dialing + handshaking a peer worker. A peer that
// cannot be reached in this budget is marked down for the generation and
// its traffic falls back to the coordinator relay — slower, never wrong.
const peerDialTimeout = 5 * time.Second

// TCP is the Transport a worker process runs the mapreduce runtime on in a
// distributed (multi-process) BRACE cluster. The process computes the
// partitions the coordinator assigned to it; a send between two of its own
// partitions stays in memory (collocation), a send to any other partition
// travels as a Data frame addressed to the owning process — directly over
// a peer link when the mesh is on, through the coordinator relay otherwise.
// The assignment is coordinator-owned state: it arrives in the handshake
// and can change mid-run through a Restore.
//
// Phase completeness is counted, not ordered: every FlushPhase sends each
// live peer an end-of-phase marker declaring how many Data frames this
// process addressed to it during the phase, and AwaitPhase completes when
// every live peer's marker has arrived *and* the declared number of unique
// Data frames has been received from it. Counting makes the barrier
// path-independent: a phase's frames may arrive over the direct peer link,
// over the coordinator relay, or both (after a mid-phase link failure the
// sender re-sends via the relay), in any interleaving. Per-(src→dst)
// sequence numbers deduplicate the maybe-delivered frame a failed link
// leaves behind, so re-sending is at-most-once on arrival.
//
// Every data-plane frame is stamped with the run's protocol generation.
// After a failure the coordinator bumps the generation and restores
// everyone from the last checkpoint; frames from older generations still
// in flight are dropped, and frames from a generation this process has not
// reached yet (a peer that restored first and raced ahead) are buffered
// and replayed by Reset. Peer links are per-generation too: a link dialed
// for generation g is torn down by the first send of generation g+1, so a
// dead epoch's in-flight peer traffic fences exactly like relayed traffic.
type TCP struct {
	proc  int
	parts int
	fc    *Conn

	metrics *cluster.Metrics

	mu        sync.Mutex
	cond      *sync.Cond
	procs     int
	gen       int
	assign    []int
	live      []bool
	inbox     [][]phasedMsg
	failed    []bool
	phase     uint64
	sent      []uint32                  // per-destination-process Data frames this phase
	seqTo     []uint64                  // per-destination-process Data sequence (this gen)
	dedup     []recvSeq                 // per-source-process receive dedup (this gen)
	marks     map[uint64]map[int]uint32 // phase → src → declared Data count
	recvd     map[uint64]map[int]uint32 // phase → src → unique Data frames received
	future    []*Frame                  // data-plane frames from a generation ahead
	directive *Directive                // pending epoch directive (slot of one)
	restore   *Restore                  // pending restore; wins over everything
	readErr   error                     // terminal reader state; sticky
	stalled   bool                      // fault injection: process frozen (StallAt)
	lastRecv  time.Time                 // time of the last frame from the coordinator

	mesh   bool
	runID  string
	peers  []string // data-plane addresses by process ("" = unreachable)
	peerIn map[*Conn]bool

	lmu   sync.Mutex
	links []*peerLink
}

// peerLink is the outgoing half of one directed worker↔worker connection:
// this process's frames to one destination. Dialed lazily by the first
// send of a generation; a failure marks it down for that generation and
// the sender falls back to the coordinator relay.
type peerLink struct {
	mu      sync.Mutex
	conn    *Conn
	gen     int
	down    bool
	stalled bool // fault injection: writes "succeed" but report failure
}

// recvSeq deduplicates one source's Data frames: next is the watermark
// (lowest unseen sequence number) and pending holds out-of-order arrivals
// above it, compacted as the watermark advances.
type recvSeq struct {
	next    uint64
	pending map[uint64]bool
}

// phasedMsg tags an inbox entry with the phase it was sent in. A fast peer
// may race ahead: once its EndPhase(k) returns (it has this process's
// marker k) it starts sending phase-k+1 data, which can arrive before this
// process has drained phase k. Phase tags keep such early arrivals queued
// until their own drain.
type phasedMsg struct {
	phase uint64
	m     cluster.Message
}

var _ Transport = (*TCP)(nil)

// NewTCP wraps an already-handshaken coordinator connection as the
// transport for worker process proc of procs, computing the partitions
// assign maps to it out of parts total. gen is the generation the process
// joins at (1 for a fresh run; a re-admitted worker passes Hello.Gen-1 so
// that the new generation's traffic buffers until its Restore applies).
// It starts the connection's reader goroutine, so the caller must not
// Recv on fc afterwards.
func NewTCP(fc *Conn, proc, procs, parts int, assign []int, gen int) *TCP {
	if len(assign) != parts {
		panic(fmt.Sprintf("transport: assignment covers %d partitions, want %d", len(assign), parts))
	}
	live := make([]bool, procs)
	for i := range live {
		live[i] = true
	}
	t := &TCP{
		proc:     proc,
		procs:    procs,
		parts:    parts,
		fc:       fc,
		metrics:  cluster.NewMetrics(parts),
		gen:      gen,
		assign:   append([]int(nil), assign...),
		live:     live,
		inbox:    make([][]phasedMsg, parts),
		failed:   make([]bool, parts),
		sent:     make([]uint32, procs),
		seqTo:    make([]uint64, procs),
		dedup:    newDedup(procs),
		marks:    make(map[uint64]map[int]uint32),
		recvd:    make(map[uint64]map[int]uint32),
		peerIn:   make(map[*Conn]bool),
		links:    make([]*peerLink, procs),
		lastRecv: time.Now(),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.readLoop()
	return t
}

func newDedup(procs int) []recvSeq {
	d := make([]recvSeq, procs)
	for i := range d {
		d[i].next = 1
	}
	return d
}

// EnableMesh turns on the peer-mesh data plane: envelope traffic and phase
// markers go directly to the peer addresses in the roster (indexed by
// process), with the coordinator relay as the fallback for peers that
// cannot be reached. runID scopes this process's peer handshakes to its
// run on daemons serving many sessions. Must be called before the first
// Send; the roster can be refreshed later through Reset.
func (t *TCP) EnableMesh(runID string, peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mesh = true
	t.runID = runID
	t.peers = append([]string(nil), peers...)
}

func (t *TCP) readLoop() {
	for {
		f, err := t.fc.Recv()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("transport: coordinator closed connection")
			}
			t.failConn(err)
			return
		}
		t.mu.Lock()
		t.lastRecv = time.Now()
		if t.stalled {
			// A stalled process neither reacts to frames nor answers
			// heartbeats; the socket keeps draining (the kernel would)
			// but nothing reaches the engine. The coordinator must
			// detect the silence and force-drop this worker.
			t.mu.Unlock()
			continue
		}
		t.mu.Unlock()
		switch f.Kind {
		case FrameData, FrameEndPhase, FrameDirective:
			t.ingest(f)
		case FramePing:
			// Answered from the reader, not the engine: a Pong proves the
			// *process* is alive even mid-phase. The epoch-round deadline,
			// not the heartbeat, covers a live process whose engine hangs.
			if err := t.fc.Send(&Frame{Kind: FramePong, Src: t.proc, Gen: f.Gen}); err != nil {
				t.failConn(err)
				return
			}
		case FrameRestore:
			t.mu.Lock()
			if f.Rest != nil && f.Rest.Gen > t.gen {
				t.restore = f.Rest
				t.cond.Broadcast()
			}
			t.mu.Unlock()
		case FrameError:
			t.failConn(fmt.Errorf("transport: peer error: %s", f.Err))
			return
		default:
			t.failConn(&ProtocolError{Kind: f.Kind, Where: "coordinator-link reader"})
			return
		}
	}
}

// ingest generation-fences one data-plane frame, whichever path delivered
// it: current generation applies, a future one (a peer that restored first
// and raced ahead) buffers for Reset to replay, a stale one is dropped.
func (t *TCP) ingest(f *Frame) {
	t.mu.Lock()
	switch {
	case f.Gen == t.gen:
		t.apply(f)
	case f.Gen > t.gen:
		t.future = append(t.future, f)
	}
	t.mu.Unlock()
}

// Stall freezes the transport's engine-facing surface, simulating a
// SIGSTOPped or livelocked worker process without killing it: subsequent
// Send/EndPhase/Control/Await* calls block until the connection dies, no
// heartbeat Pongs are answered, and incoming frames are discarded. Unlike
// SeverAt's closed socket, the coordinator gets no error to react to —
// only its own liveness machinery can notice. The stall ends when the
// coordinator closes the connection (force-drop), which unwinds every
// blocked call with the read error so the daemon can accept a rejoin.
func (t *TCP) Stall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stalled = true
	t.cond.Broadcast()
}

// LastRecv reports when the coordinator last sent anything — the worker
// side's liveness evidence (with heartbeats on, a healthy coordinator is
// never silent for long).
func (t *TCP) LastRecv() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastRecv
}

// awaitUnstallLocked parks the calling engine operation while the
// transport is stalled. Caller holds t.mu; returns the terminal error
// once the connection dies.
func (t *TCP) awaitUnstallLocked() error {
	for t.stalled && t.readErr == nil {
		t.cond.Wait()
	}
	if t.readErr != nil {
		return t.readErr
	}
	return nil
}

// apply files one current-generation frame. Caller holds t.mu.
func (t *TCP) apply(f *Frame) {
	switch f.Kind {
	case FrameData:
		// Sequence-deduplicate before anything else: a frame re-sent over
		// the relay after a peer-link failure may already have arrived.
		if f.Src >= 0 && f.Src < len(t.dedup) && f.Seq > 0 {
			if !t.dedup[f.Src].accept(f.Seq) {
				return
			}
			// Count the unique arrival toward its phase's declared total —
			// before the failed-partition filter below: the sender counted
			// the frame when it put it on the wire, and barrier
			// completeness tracks transport-level delivery, not whether
			// the application kept the message.
			t.recvdAdd(f.Phase, f.Src)
		}
		m := f.Msg
		if m.To >= 0 && int(m.To) < len(t.inbox) && !t.failed[m.To] {
			t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: f.Phase, m: m})
		}
		t.cond.Broadcast()
	case FrameEndPhase:
		// Assignment, not increment: a marker that traveled both paths
		// (direct and relay re-send) must land exactly once.
		mk := t.marks[f.Phase]
		if mk == nil {
			mk = make(map[int]uint32)
			t.marks[f.Phase] = mk
		}
		mk[f.Src] = f.Count
		t.cond.Broadcast()
	case FrameDirective:
		t.directive = f.Dir
		t.cond.Broadcast()
	default:
		// Unreachable while the reader loops filter what reaches ingest;
		// a new frame kind routed here must kill the session loudly, not
		// vanish. Caller holds t.mu, so fail inline rather than through
		// failConn.
		if t.readErr == nil {
			t.readErr = &ProtocolError{Kind: f.Kind, Where: "TCP.apply"}
		}
		t.cond.Broadcast()
	}
}

// accept reports whether seq is new, advancing the watermark and
// compacting the pending set.
func (d *recvSeq) accept(seq uint64) bool {
	if seq < d.next || d.pending[seq] {
		return false
	}
	if seq == d.next {
		d.next++
		for d.pending[d.next] {
			delete(d.pending, d.next)
			d.next++
		}
		return true
	}
	if d.pending == nil {
		d.pending = make(map[uint64]bool)
	}
	d.pending[seq] = true
	return true
}

// recvdAdd counts one unique Data arrival from src toward phase. Caller
// holds t.mu.
func (t *TCP) recvdAdd(phase uint64, src int) {
	rc := t.recvd[phase]
	if rc == nil {
		rc = make(map[int]uint32)
		t.recvd[phase] = rc
	}
	rc[src]++
}

func (t *TCP) failConn(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.readErr == nil {
		t.readErr = err
	}
	t.cond.Broadcast()
}

// N returns the total partition count.
func (t *TCP) N() int { return t.parts }

// Proc returns this process's index.
func (t *TCP) Proc() int { return t.proc }

// liveProcs counts processes still in the run. Caller holds t.mu.
func (t *TCP) liveProcs() int {
	n := 0
	for _, l := range t.live {
		if l {
			n++
		}
	}
	return n
}

// Send enqueues locally when the destination partition is assigned to this
// process and ships an addressed Data frame to the owning process
// otherwise.
func (t *TCP) Send(m cluster.Message) error {
	if m.To < 0 || int(m.To) >= t.parts {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	if t.restore != nil {
		t.mu.Unlock()
		return ErrRestore
	}
	if err := t.readErr; err != nil {
		t.mu.Unlock()
		return err
	}
	if t.failed[m.From] || t.failed[m.To] {
		t.mu.Unlock()
		return nil
	}
	dst := t.assign[m.To]
	local := dst == t.proc
	// Sends happen inside the phase that the *next* EndPhase ends.
	phase := t.phase + 1
	gen := t.gen
	// Collocation: traffic between partitions of the same process never
	// touches the wire and is metered as local.
	t.metrics.RecordSend(m.From, m.To, m.Bytes, local)
	if local {
		t.inbox[m.To] = append(t.inbox[m.To], phasedMsg{phase: phase, m: m})
		t.mu.Unlock()
		return nil
	}
	t.sent[dst]++
	t.seqTo[dst]++
	f := &Frame{Kind: FrameData, Src: t.proc, Gen: gen, Phase: phase, Dst: dst, Seq: t.seqTo[dst], Msg: m}
	t.mu.Unlock()
	return t.sendFrame(dst, f)
}

// sendFrame routes one addressed data-plane frame: over the direct peer
// link when the mesh is on and the peer is reachable, through the
// coordinator relay otherwise. A mid-send link failure falls back to the
// relay with the same frame — the receiver's sequence dedup absorbs the
// maybe-delivered original.
func (t *TCP) sendFrame(dst int, f *Frame) error {
	if t.isMesh() {
		if c := t.peerConn(dst, f.Gen); c != nil {
			l := t.linkFor(dst)
			l.mu.Lock()
			stalled := l.stalled
			l.mu.Unlock()
			if stalled {
				// Fault injection: the write reaches the socket (the frame
				// may be delivered) but the sender sees a failure, exactly
				// like a write deadline expiring on a congested link.
				_ = c.Send(f)
				t.downPeer(dst, f.Gen, c)
			} else if err := c.Send(f); err == nil {
				return nil
			} else {
				t.downPeer(dst, f.Gen, c)
			}
		}
	}
	return t.fc.Send(f)
}

// isMesh reports whether the mesh data plane is on.
func (t *TCP) isMesh() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mesh
}

// linkFor returns the (always non-nil) link record for dst, growing the
// table if a Restore admitted new processes.
func (t *TCP) linkFor(dst int) *peerLink {
	t.lmu.Lock()
	defer t.lmu.Unlock()
	for len(t.links) <= dst {
		t.links = append(t.links, nil)
	}
	if t.links[dst] == nil {
		t.links[dst] = &peerLink{}
	}
	return t.links[dst]
}

// peerConn returns an established peer connection to dst for generation
// gen, dialing lazily. nil means the peer is unreachable this generation
// (or was cut by fault injection): use the relay.
func (t *TCP) peerConn(dst, gen int) *Conn {
	l := t.linkFor(dst)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != gen {
		// A link of another generation is stale no matter its state: close
		// it so the dead epoch's in-flight frames fence at the receiver,
		// and start this generation fresh.
		if l.conn != nil {
			_ = l.conn.Close()
			l.conn = nil
		}
		l.down = false
		l.stalled = false
		l.gen = gen
	}
	if l.down {
		return nil
	}
	if l.conn != nil {
		return l.conn
	}
	t.mu.Lock()
	var addr string
	if dst < len(t.peers) {
		addr = t.peers[dst]
	}
	runID, from := t.runID, t.proc
	t.mu.Unlock()
	if addr == "" {
		l.down = true
		return nil
	}
	nc, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		l.down = true
		return nil
	}
	_ = nc.SetDeadline(time.Now().Add(peerDialTimeout))
	pc := NewConn(nc)
	err = pc.Send(&Frame{Kind: FramePeerHello, Peer: &PeerHello{RunID: runID, From: from, To: dst, Gen: gen}})
	if err == nil {
		var ack *Frame
		if ack, err = pc.Recv(); err == nil && (ack.Kind != FrameAck || ack.Err != "") {
			err = fmt.Errorf("transport: peer %d rejected link: %s", dst, ack.Err)
		}
	}
	if err != nil {
		_ = pc.Close()
		l.down = true
		return nil
	}
	_ = nc.SetDeadline(time.Time{})
	l.conn = pc
	return pc
}

// downPeer marks dst's link down for gen and closes the failed connection;
// subsequent sends of the generation use the relay.
func (t *TCP) downPeer(dst, gen int, c *Conn) {
	l := t.linkFor(dst)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == c {
		l.conn = nil
	}
	if l.gen == gen {
		l.down = true
	}
	_ = c.Close()
}

// CutPeer severs this process's outgoing link to dst for the current
// generation: the connection closes (frames already written are delivered)
// and subsequent traffic to dst falls back to the coordinator relay.
// Fault injection for the peer-link chaos suite.
func (t *TCP) CutPeer(dst int) {
	t.mu.Lock()
	gen := t.gen
	t.mu.Unlock()
	l := t.linkFor(dst)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		_ = l.conn.Close()
		l.conn = nil
	}
	l.gen = gen
	l.down = true
}

// StallPeer makes this process's outgoing link to dst fail like a
// stopped-draining socket: the next send's bytes reach the wire but the
// sender observes an error, marks the link down, and re-sends through the
// relay — exercising the receiver's duplicate suppression. Fault injection
// for the peer-link chaos suite.
func (t *TCP) StallPeer(dst int) {
	t.mu.Lock()
	gen := t.gen
	t.mu.Unlock()
	l := t.linkFor(dst)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gen = gen
	l.stalled = true
}

// AcceptPeer attaches an incoming peer connection (its PeerHello already
// read by the daemon) to this transport: the link's frames are read by a
// dedicated goroutine and generation-fenced exactly like relayed ones.
// The Ack completing the peer handshake is sent here.
func (t *TCP) AcceptPeer(fc *Conn, ph *PeerHello) error {
	if ph.To != t.proc {
		err := fmt.Errorf("transport: peer link for process %d reached process %d", ph.To, t.proc)
		_ = fc.Send(&Frame{Kind: FrameAck, Err: err.Error()})
		_ = fc.Close()
		return err
	}
	if err := fc.Send(&Frame{Kind: FrameAck}); err != nil {
		_ = fc.Close()
		return err
	}
	t.mu.Lock()
	t.peerIn[fc] = true
	t.mu.Unlock()
	go t.readPeer(fc)
	return nil
}

// readPeer drains one incoming peer link until it dies. Only data-plane
// frames are legal on a peer link; they fence by generation like every
// other path. Errors are not terminal for the transport — the sender falls
// back to the relay, and the barrier accounting stays exact either way.
func (t *TCP) readPeer(fc *Conn) {
	defer func() {
		t.mu.Lock()
		delete(t.peerIn, fc)
		t.mu.Unlock()
		_ = fc.Close()
	}()
	for {
		f, err := fc.Recv()
		if err != nil {
			return
		}
		t.mu.Lock()
		stalled := t.stalled
		t.mu.Unlock()
		if stalled {
			continue // a frozen process ignores peer traffic too
		}
		switch f.Kind {
		case FrameData, FrameEndPhase:
			t.ingest(f)
		default:
			// Only the data plane flows worker↔worker; anything else on a
			// peer link is a protocol violation worth failing the session
			// over, not a frame to shrug off.
			t.failConn(&ProtocolError{Kind: f.Kind, Where: "peer-link reader"})
			return
		}
	}
}

// PeerLinks counts this transport's open peer connections, incoming and
// outgoing — the load figure the daemon reports to the registry.
func (t *TCP) PeerLinks() int {
	t.mu.Lock()
	n := len(t.peerIn)
	t.mu.Unlock()
	t.lmu.Lock()
	defer t.lmu.Unlock()
	for _, l := range t.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			n++
		}
		l.mu.Unlock()
	}
	return n
}

// Drain removes and returns the messages queued for partition n that
// belong to the just-ended phase (or earlier). Arrivals a racing-ahead
// peer already sent for the next phase stay queued for their own drain.
func (t *TCP) Drain(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []phasedMsg
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			out = append(out, pm.m)
		} else {
			keep = append(keep, pm)
		}
	}
	t.inbox[n] = keep
	return out
}

// Pending returns the number of queued messages for partition n that a
// Drain right now would return — early arrivals for a not-yet-ended phase
// are excluded, keeping Pending and Drain consistent.
func (t *TCP) Pending(n cluster.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	count := 0
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase {
			count++
		}
	}
	return count
}

// Fail marks a partition crashed in this process's local bookkeeping;
// it only serves the Transport contract (multi-process failure handling
// is the coordinator's job, not the injection API's).
func (t *TCP) Fail(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = true
	t.inbox[n] = nil
}

// Recover clears a partition's local failed mark.
func (t *TCP) Recover(n cluster.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed[n] = false
}

// Failed reports the local failed mark for partition n.
func (t *TCP) Failed(n cluster.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed[n]
}

// Metrics returns this process's traffic counters.
func (t *TCP) Metrics() *cluster.Metrics { return t.metrics }

// EndPhase sends this process's end-of-phase markers and blocks until the
// phase is complete from every live peer: all markers in, all declared
// Data frames in the local inboxes. It returns ErrRestore if the
// coordinator orders a restore while waiting.
func (t *TCP) EndPhase() error {
	if err := t.FlushPhase(); err != nil {
		return err
	}
	return t.AwaitPhase()
}

// FlushPhase advances the local phase counter and sends every live peer an
// end-of-phase marker declaring this process's Data-frame count to it,
// without waiting. Self-sends of the phase (collocated, already in the
// local inboxes) become drainable through DrainSelf the moment it returns.
// In mesh mode an extra Dst=-1 marker goes to the coordinator so its
// liveness machinery still observes barrier progress it no longer relays.
func (t *TCP) FlushPhase() error {
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	if t.restore != nil {
		t.mu.Unlock()
		return ErrRestore
	}
	if err := t.readErr; err != nil {
		t.mu.Unlock()
		return err
	}
	t.phase++
	phase := t.phase
	gen := t.gen
	mesh := t.mesh
	type mark struct {
		dst   int
		count uint32
	}
	var outs []mark
	for p := 0; p < t.procs && p < len(t.live); p++ {
		if p != t.proc && t.live[p] {
			outs = append(outs, mark{dst: p, count: t.sent[p]})
		}
	}
	for p := range t.sent {
		t.sent[p] = 0
	}
	t.mu.Unlock()
	for _, o := range outs {
		f := &Frame{Kind: FrameEndPhase, Src: t.proc, Gen: gen, Phase: phase, Dst: o.dst, Count: o.count}
		if err := t.sendFrame(o.dst, f); err != nil {
			return err
		}
	}
	if mesh && len(outs) > 0 {
		// Control-plane progress note; the hub records it and relays
		// nothing.
		if err := t.fc.Send(&Frame{Kind: FrameEndPhase, Src: t.proc, Gen: gen, Phase: phase, Dst: -1}); err != nil {
			return err
		}
	}
	return nil
}

// AwaitPhase blocks until the phase the preceding FlushPhase ended is
// complete: every live peer's marker has arrived and its declared number
// of unique Data frames is in the local inboxes — whichever mix of peer
// links and coordinator relay delivered them.
func (t *TCP) AwaitPhase() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	phase := t.phase
	for !t.phaseDoneLocked(phase) && t.readErr == nil && t.restore == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return t.awaitUnstallLocked()
	}
	switch {
	case t.restore != nil:
		return ErrRestore
	case t.readErr != nil:
		return t.readErr
	}
	delete(t.marks, phase)
	delete(t.recvd, phase)
	return nil
}

// phaseDoneLocked reports whether every live peer's marker for phase has
// arrived with its declared Data count satisfied. Caller holds t.mu.
func (t *TCP) phaseDoneLocked(phase uint64) bool {
	for p := 0; p < len(t.live); p++ {
		if p == t.proc || !t.live[p] {
			continue
		}
		count, ok := t.marks[phase][p]
		if !ok {
			return false
		}
		if t.recvd[phase][p] < count {
			return false
		}
	}
	return true
}

// DrainSelf removes and returns partition n's messages to itself from the
// phase the last FlushPhase ended (or earlier). All of a partition's sends
// to itself are collocated, so they are complete without waiting for any
// peer marker.
func (t *TCP) DrainSelf(n cluster.NodeID) []cluster.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []cluster.Message
	var keep []phasedMsg
	for _, pm := range t.inbox[n] {
		if pm.phase <= t.phase && pm.m.From == n {
			out = append(out, pm.m)
		} else {
			keep = append(keep, pm)
		}
	}
	t.inbox[n] = keep
	return out
}

// Control sends a control-plane frame (stats, checkpoint, final report),
// stamped with this process's index and current generation. Control
// frames always ride the coordinator star, mesh or not.
func (t *TCP) Control(f *Frame) error {
	t.mu.Lock()
	if t.stalled {
		err := t.awaitUnstallLocked()
		t.mu.Unlock()
		return err
	}
	f.Src = t.proc
	f.Gen = t.gen
	t.mu.Unlock()
	return t.fc.Send(f)
}

// AwaitDirective blocks until the coordinator answers the epoch barrier.
// It returns ErrRestore if a restore arrives first (a peer died at or
// around the barrier), or the terminal read error.
func (t *TCP) AwaitDirective() (*Directive, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.directive == nil && t.restore == nil && t.readErr == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return nil, t.awaitUnstallLocked()
	}
	switch {
	case t.restore != nil:
		return nil, ErrRestore
	case t.directive != nil:
		d := t.directive
		t.directive = nil
		return d, nil
	}
	return nil, t.readErr
}

// AwaitRestore blocks until a restore is pending (returning it without
// clearing it — Reset does that) or the connection reaches a terminal
// state. A worker that finished its ticks parks here: either the
// coordinator closes the connection (run complete) or a late failure
// rewinds it back into the tick loop.
func (t *TCP) AwaitRestore() (*Restore, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.restore == nil && t.readErr == nil && !t.stalled {
		t.cond.Wait()
	}
	if t.stalled {
		return nil, t.awaitUnstallLocked()
	}
	if t.restore != nil {
		return t.restore, nil
	}
	return nil, t.readErr
}

// Reset installs a restore: new generation, assignment, live set and (mesh)
// peer roster; phase counters, markers, sequence state, inboxes and any
// stale directive are discarded, and buffered frames of the new generation
// (from peers that restored first) are replayed. The process table grows
// when the restore admits processes beyond the handshake's count (a worker
// that registered mid-run). Stale peer links tear down lazily: the first
// send of the new generation closes and re-dials them, and their leftover
// in-flight frames fence on Gen at the receiver. The engine state itself
// is restored by the caller.
func (t *TCP) Reset(r *Restore) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen = r.Gen
	t.assign = append([]int(nil), r.Assign...)
	t.live = append([]bool(nil), r.Live...)
	if n := len(r.Live); n > t.procs {
		t.procs = n
	}
	t.phase = 0
	t.sent = make([]uint32, t.procs)
	t.seqTo = make([]uint64, t.procs)
	t.dedup = newDedup(t.procs)
	t.marks = make(map[uint64]map[int]uint32)
	t.recvd = make(map[uint64]map[int]uint32)
	if r.Peers != nil {
		t.peers = append([]string(nil), r.Peers...)
	}
	for i := range t.inbox {
		t.inbox[i] = nil
	}
	t.directive = nil
	if t.restore != nil && t.restore.Gen <= r.Gen {
		t.restore = nil
	}
	var keep []*Frame
	for _, f := range t.future {
		switch {
		case f.Gen == r.Gen:
			t.apply(f)
		case f.Gen > r.Gen:
			keep = append(keep, f)
		}
	}
	t.future = keep
	t.cond.Broadcast()
}

// Close tears down the coordinator connection and every peer link; reader
// goroutines exit on the resulting read errors.
func (t *TCP) Close() error {
	err := t.fc.Close()
	t.lmu.Lock()
	links := append([]*peerLink(nil), t.links...)
	t.lmu.Unlock()
	for _, l := range links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			_ = l.conn.Close()
			l.conn = nil
		}
		l.mu.Unlock()
	}
	t.mu.Lock()
	ins := make([]*Conn, 0, len(t.peerIn))
	for c := range t.peerIn { //bracevet:allow maporder teardown fan-out; closes are independent and order unobservable
		ins = append(ins, c)
	}
	t.mu.Unlock()
	for _, c := range ins {
		_ = c.Close()
	}
	return err
}
