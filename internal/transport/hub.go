package transport

import (
	"fmt"
	"io"
	"sync"
)

// Hub is the coordinator's relay: a star topology with the coordinator at
// the center and one framed connection per worker process. Each inbound
// connection is read by its own goroutine that forwards frames
// synchronously, so per-source frame order — which the TCP transport's
// marker protocol depends on — is preserved end to end.
type Hub struct {
	conns []*Conn
	parts int

	mu       sync.Mutex
	firstErr error
}

// NewHub builds a relay over already-handshaken worker connections; conns[i]
// must be worker process i. parts is the total partition count, needed to
// route Data frames to the process owning the destination partition.
func NewHub(conns []*Conn, parts int) *Hub {
	return &Hub{conns: conns, parts: parts}
}

// Run relays Data and EndPhase frames between workers until every worker
// has sent its FinalReport (returned indexed by process), or until any
// connection errors — in which case the error is broadcast to the
// remaining workers so none is left blocked at a phase barrier.
func (h *Hub) Run() ([]*FinalReport, error) {
	finals := make([]*FinalReport, len(h.conns))
	var wg sync.WaitGroup
	for i, c := range h.conns {
		wg.Add(1)
		go func(src int, c *Conn) {
			defer wg.Done()
			if err := h.relay(src, c, finals); err != nil {
				h.abort(src, err)
			}
		}(i, c)
	}
	wg.Wait()
	h.mu.Lock()
	err := h.firstErr
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for i, f := range finals {
		if f == nil {
			return nil, fmt.Errorf("transport: worker %d closed without a final report", i)
		}
	}
	return finals, nil
}

// relay forwards one worker's frames until its FinalReport arrives.
func (h *Hub) relay(src int, c *Conn, finals []*FinalReport) error {
	for {
		f, err := c.Recv()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("transport: worker %d disconnected mid-run", src)
			}
			return fmt.Errorf("transport: worker %d: %w", src, err)
		}
		switch f.Kind {
		case FrameData:
			if f.Msg.To < 0 || int(f.Msg.To) >= h.parts {
				return fmt.Errorf("transport: worker %d sent to unroutable partition %d", src, f.Msg.To)
			}
			dst := OwnerProc(int(f.Msg.To), h.parts, len(h.conns))
			if err := h.conns[dst].Send(f); err != nil {
				return err
			}
		case FrameEndPhase:
			for j, peer := range h.conns {
				if j == f.Src {
					continue
				}
				if err := peer.Send(f); err != nil {
					return err
				}
			}
		case FrameFinal:
			if f.Final == nil || f.Final.Proc != src {
				return fmt.Errorf("transport: worker %d sent a malformed final report", src)
			}
			finals[src] = f.Final
			return nil
		case FrameError:
			return fmt.Errorf("transport: worker %d failed: %s", src, f.Err)
		default:
			return fmt.Errorf("transport: worker %d sent unexpected frame kind %d", src, f.Kind)
		}
	}
}

// abort records the first error, broadcasts it so no worker stays blocked
// at a phase barrier, then closes every connection so the other relay
// goroutines unblock too (their workers read the error frame before the
// FIN — writes precede the close on each connection).
func (h *Hub) abort(src int, err error) {
	h.mu.Lock()
	first := h.firstErr == nil
	if first {
		h.firstErr = err
	}
	h.mu.Unlock()
	if !first {
		return
	}
	f := &Frame{Kind: FrameError, Src: src, Err: err.Error()}
	for j, peer := range h.conns {
		if j == src {
			continue
		}
		_ = peer.Send(f) // best effort; the peer may already be gone
	}
	for _, peer := range h.conns {
		_ = peer.Close()
	}
}
