package transport

import (
	"fmt"
	"io"
	"sync"
)

// Hub is the coordinator's star: one framed connection per worker
// process, each read by its own goroutine. In star runs it relays the
// whole data plane — addressed Data frames and per-peer EndPhase markers
// go to their Dst — and in mesh runs it is the control plane plus a relay
// *fallback*: workers exchange data directly and the hub carries only
// stats/directives/checkpoints/heartbeats, progress notes (Dst = -1
// markers), and whatever traffic a failed peer link diverts back to it.
// The count-based barrier protocol (see TCP) is path-independent, so the
// fallback needs no ordering guarantees from the hub. Everything that is
// not relayable surfaces as HubEvents for the coordinator's control loop.
//
// Routing is dynamic: frames carry their destination, the assignment
// table backs up unaddressed ones, and both the table (SetAssign) and the
// connection set (Attach, Grow) can change mid-run when the control plane
// re-places partitions after a failure or admits a worker.
type Hub struct {
	parts  int
	events chan HubEvent

	mu       sync.Mutex
	conns    []*Conn
	live     []bool
	seqs     []int // per-proc attach sequence; fences stale disconnect events
	assign   []int
	progress []ProcProgress
	traffic  HubTraffic
}

// HubTraffic is the relay's frame accounting, split by plane. In a healthy
// mesh run the data-plane counters stay at zero in steady state — envelope
// traffic and markers travel peer-to-peer and only progress notes and
// control frames reach the star — which the chaos suite asserts; any
// DataFrames that do appear are the relay fallback earning its keep.
type HubTraffic struct {
	// DataFrames/DataBytes count relayed envelope (FrameData) traffic.
	DataFrames, DataBytes int64
	// MarkerFrames counts relayed end-of-phase markers (star mode, or a
	// mesh pair whose direct link failed).
	MarkerFrames int64
	// ProgressFrames counts mesh progress notes (Dst = -1): markers the
	// hub records for liveness and relays nowhere.
	ProgressFrames int64
	// ControlFrames counts stats/checkpoint/final/pong frames surfaced to
	// the coordinator loop.
	ControlFrames int64
}

// HubEvent is one control-plane occurrence: a control frame from a worker
// (Frame non-nil) or a worker disconnect (Frame nil, Err the reason).
// Seq is the attach sequence of the connection the event came from, so a
// consumer that re-attached the process can discard disconnects queued by
// the replaced connection. Bytes is the frame's size on the wire — the
// coordinator meters checkpoint traffic with it.
type HubEvent struct {
	Src   int
	Frame *Frame
	Err   error
	Seq   int
	Bytes int
}

// ProcProgress is one worker's data-plane progress as the relay observes
// it: the highest end-of-phase marker the worker has emitted and the
// generation it was stamped with. The coordinator's epoch-round deadline
// uses it to tell the laggard (marker missing) from the peers blocked
// waiting on it (markers present) — the two are indistinguishable at the
// control plane, where neither sends anything.
type ProcProgress struct {
	Gen   int
	Phase uint64
}

// Before reports whether p is strictly behind q in (generation, phase)
// order.
func (p ProcProgress) Before(q ProcProgress) bool {
	return p.Gen < q.Gen || (p.Gen == q.Gen && p.Phase < q.Phase)
}

// NewHub builds a relay for procs worker processes over parts partitions
// under the given initial assignment. Connections are added with Attach.
func NewHub(parts, procs int, assign []int) *Hub {
	return &Hub{
		parts:    parts,
		events:   make(chan HubEvent, 8*procs+64),
		conns:    make([]*Conn, procs),
		live:     make([]bool, procs),
		seqs:     make([]int, procs),
		assign:   append([]int(nil), assign...),
		progress: make([]ProcProgress, procs),
	}
}

// Progress snapshots every worker's observed marker progress.
func (h *Hub) Progress() []ProcProgress {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ProcProgress(nil), h.progress...)
}

// Traffic snapshots the relay's per-plane frame accounting.
func (h *Hub) Traffic() HubTraffic {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.traffic
}

// Grow widens the hub to procs worker slots (a worker registered mid-run);
// existing connections and their attach sequences are untouched. No-op if
// the hub is already that wide.
func (h *Hub) Grow(procs int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.conns) < procs {
		h.conns = append(h.conns, nil)
		h.live = append(h.live, false)
		h.seqs = append(h.seqs, 0)
		h.progress = append(h.progress, ProcProgress{})
	}
}

// Events delivers control frames and disconnects, in per-connection
// arrival order, to the coordinator's control loop.
func (h *Hub) Events() <-chan HubEvent { return h.events }

// SetAssign swaps the partition→process routing table.
func (h *Hub) SetAssign(assign []int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.assign = append([]int(nil), assign...)
}

// Attach registers (or replaces, for a re-admitted worker) process proc's
// connection, starts its relay goroutine, and returns the connection's
// attach sequence (compare against HubEvent.Seq to spot stale events).
func (h *Hub) Attach(proc int, c *Conn) int {
	h.mu.Lock()
	h.conns[proc] = c
	h.live[proc] = true
	h.seqs[proc]++
	seq := h.seqs[proc]
	h.mu.Unlock()
	go h.relay(proc, c)
	return seq
}

// Send delivers one frame to process proc.
func (h *Hub) Send(proc int, f *Frame) error {
	h.mu.Lock()
	c, ok := h.conns[proc], h.live[proc]
	h.mu.Unlock()
	if !ok || c == nil {
		return fmt.Errorf("transport: worker %d is not connected", proc)
	}
	return c.Send(f)
}

// Broadcast delivers one frame to every live process, best-effort.
func (h *Hub) Broadcast(f *Frame) {
	for _, c := range h.liveConns(-1) {
		_ = c.conn.Send(f)
	}
}

// Kill force-drops a worker the control plane has declared dead (a
// stalled process misses heartbeats but its socket is still open): the
// connection is closed and the slot marked dead *without* emitting a
// disconnect event — the caller already knows. Closing the socket also
// unwinds the worker's blocked session so its daemon can accept a rejoin
// dial. Safe to call for a connection that is already gone.
func (h *Hub) Kill(proc int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live[proc] = false
	if c := h.conns[proc]; c != nil {
		_ = c.Close()
	}
}

// Close tears down every connection; relay goroutines exit silently.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range h.conns {
		h.live[i] = false
		if c != nil {
			_ = c.Close()
		}
	}
}

type hubConn struct {
	proc int
	conn *Conn
}

// liveConns snapshots the live connections, excluding proc (pass -1 to
// exclude none).
func (h *Hub) liveConns(except int) []hubConn {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]hubConn, 0, len(h.conns))
	for i, c := range h.conns {
		if i == except || !h.live[i] || c == nil {
			continue
		}
		out = append(out, hubConn{proc: i, conn: c})
	}
	return out
}

// drop marks a process dead and reports whether it was live along with
// its attach sequence (the caller emits the disconnect event exactly
// once, stamped so consumers can discard it if the process re-attached).
func (h *Hub) drop(proc int, c *Conn) (bool, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// A re-admitted worker replaces its dead connection; only the relay
	// that still owns the registered conn may kill the slot.
	if h.conns[proc] != c {
		return false, 0
	}
	was := h.live[proc]
	h.live[proc] = false
	_ = c.Close()
	return was, h.seqs[proc]
}

// relay forwards one worker's frames until its connection dies: Data to
// the destination partition's owner, EndPhase markers to every live peer,
// everything else to the control loop.
func (h *Hub) relay(src int, c *Conn) {
	for {
		f, n, err := c.RecvSized()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("transport: worker %d disconnected mid-run", src)
			} else {
				err = fmt.Errorf("transport: worker %d: %w", src, err)
			}
			if was, seq := h.drop(src, c); was {
				h.events <- HubEvent{Src: src, Err: err, Seq: seq}
			}
			return
		}
		switch f.Kind {
		case FrameData:
			if f.Msg.To < 0 || int(f.Msg.To) >= h.parts {
				if was, seq := h.drop(src, c); was {
					h.events <- HubEvent{Src: src, Err: fmt.Errorf("transport: worker %d sent to unroutable partition %d", src, f.Msg.To), Seq: seq}
				}
				return
			}
			h.mu.Lock()
			h.traffic.DataFrames++
			h.traffic.DataBytes += int64(n)
			// The sender addressed the frame (Dst) under the same
			// generation's assignment this hub routes by; fall back to the
			// routing table for safety.
			dst := f.Dst
			if dst < 0 || dst >= len(h.conns) {
				dst = h.assign[f.Msg.To]
			}
			dc := h.conns[dst]
			if !h.live[dst] {
				dc = nil // owner died; the frame's generation is doomed anyway
			}
			h.mu.Unlock()
			if dc != nil {
				if err := dc.Send(f); err != nil {
					if was, seq := h.drop(dst, dc); was {
						h.events <- HubEvent{Src: dst, Err: fmt.Errorf("transport: relay to worker %d: %w", dst, err), Seq: seq}
					}
				}
			}
		case FrameEndPhase:
			h.noteProgress(src, f.Gen, f.Phase)
			if f.Dst < 0 {
				// A mesh progress note: liveness evidence only, relayed
				// nowhere.
				h.mu.Lock()
				h.traffic.ProgressFrames++
				h.mu.Unlock()
				continue
			}
			h.mu.Lock()
			h.traffic.MarkerFrames++
			var dc *Conn
			if f.Dst < len(h.conns) && h.live[f.Dst] {
				dc = h.conns[f.Dst]
			}
			h.mu.Unlock()
			if dc != nil {
				if err := dc.Send(f); err != nil {
					if was, seq := h.drop(f.Dst, dc); was {
						h.events <- HubEvent{Src: f.Dst, Err: fmt.Errorf("transport: relay to worker %d: %w", f.Dst, err), Seq: seq}
					}
				}
			}
		default:
			h.mu.Lock()
			h.traffic.ControlFrames++
			h.mu.Unlock()
			h.events <- HubEvent{Src: src, Frame: f, Bytes: n}
		}
	}
}

// noteProgress records the highest (generation, phase) marker a worker
// has emitted.
func (h *Hub) noteProgress(src, gen int, phase uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.progress[src].Before(ProcProgress{Gen: gen, Phase: phase}) {
		h.progress[src] = ProcProgress{Gen: gen, Phase: phase}
	}
}
