// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 2 and Figures 3–8. Each runner returns a Result
// with the same rows/series the paper reports; cmd/experiments prints them
// and bench_test.go wraps each in a testing.B benchmark.
//
// Substitution note (see DESIGN.md §4): the paper's cluster experiments
// (Figs. 5–8) ran on 60 physical nodes; here worker nodes are simulated
// and *virtual-time* throughput is reported, driven by the calibrated cost
// model in internal/cluster. Single-node experiments (Table 2, Figs. 3–4)
// use real wall-clock time, as in the paper.
package experiments

import (
	"fmt"
	"strings"

	"github.com/bigreddata/brace/internal/sim/traffic"
	"github.com/bigreddata/brace/internal/stats"
)

// Scale shrinks experiments so they run in seconds on a laptop while
// preserving the shapes the paper reports. Scale 1.0 approximates the
// paper's problem sizes.
type Scale struct {
	// Factor scales problem sizes (segment lengths, fish counts).
	Factor float64
	// Ticks is the measured tick count per configuration.
	Ticks int
	// WarmupTicks are run and discarded first ("we eliminate start-up
	// transients by discarding initial ticks", §5.1).
	WarmupTicks int
	// Seed drives all randomness.
	Seed uint64
}

// Quick returns the scale used by tests and the default CLI run.
func Quick() Scale { return Scale{Factor: 0.12, Ticks: 30, WarmupTicks: 5, Seed: 42} }

// Full approximates the paper's sizes (minutes of runtime).
func Full() Scale { return Scale{Factor: 1.0, Ticks: 100, WarmupTicks: 20, Seed: 42} }

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper artifact ("Table 2", "Figure 3", ...).
	ID string
	// Title restates what is measured.
	Title string
	// XName labels the x axis for series results.
	XName string
	// Series holds one labeled curve per engine configuration.
	Series []*stats.Series
	// Work holds deterministic work-counter curves (index candidates
	// examined) for the single-node figures: the mechanism behind the
	// wall-clock curves, and what the tests assert on since it is immune
	// to timer noise.
	Work []*stats.Series
	// Rows holds Table 2's RMSPE rows (nil for figures).
	Rows []traffic.Row
	// PaperClaim summarizes what the paper reports for this artifact.
	PaperClaim string
	// Notes records scale factors and substitutions for the report.
	Notes string
}

// String renders the result as the harness's standard text block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", r.Notes)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(&b, "%-6s %18s %14s %14s\n", "Lane", "ChangeFreq RMSPE", "Density RMSPE", "Velocity RMSPE")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "L%-5d %17.2f%% %13.2f%% %13.4f%%\n",
				row.Lane, row.ChangeFreq*100, row.Density*100, row.MeanV*100)
		}
	}
	if len(r.Series) > 0 {
		b.WriteString(stats.Table(r.Title, r.XName, r.Series...))
	}
	if len(r.Work) > 0 {
		b.WriteString(stats.Table(r.Title+" — candidates examined", r.XName, r.Work...))
	}
	return b.String()
}

// Runner is one registered experiment: the paper's artifacts, the
// reproduction's ablations, and the registry-driven scenario sweep.
// cmd/experiments enumerates this list (-exp list), so adding an
// experiment here is the only wiring it needs.
type Runner struct {
	// Name is the canonical id (-exp takes it).
	Name string
	// Aliases are accepted alternative ids.
	Aliases []string
	// Title is a one-line summary for listings.
	Title string
	// Run regenerates the artifact at the given scale.
	Run func(Scale) (*Result, error)
}

// Runners returns every registered experiment in presentation order.
func Runners() []Runner {
	return []Runner{
		{"table2", []string{"t2"}, "traffic validation RMSPE vs MITSIM", Table2},
		{"fig3", []string{"figure3"}, "traffic: indexing vs segment length", Fig3},
		{"fig4", []string{"figure4"}, "fish: indexing vs visibility", Fig4},
		{"fig5", []string{"figure5"}, "predator: effect inversion", Fig5},
		{"fig6", []string{"figure6"}, "traffic scale-up", Fig6},
		{"fig7", []string{"figure7"}, "fish scale-up, LB on/off", Fig7},
		{"fig8", []string{"figure8"}, "fish epoch time, LB on/off", Fig8},
		{"collocation", []string{"a1"}, "ablation: collocated vs shipped update phase", AblationCollocation},
		{"checkpoint", []string{"a2"}, "ablation: checkpoint interval cost", AblationCheckpointInterval},
		{"inversion", []string{"a3"}, "ablation: compiler inversion pass", AblationInversionPass},
		{"qcache", []string{"a4", "cache"}, "ablation: Verlet query cache off vs on, with build/reuse split", AblationQueryCache},
		{"overlap", []string{"a5"}, "ablation: overlapped two-pass tick off vs on, bit-identity checked", AblationOverlap},
		{"scenarios", []string{"sweep"}, "every registered scenario: throughput vs workers", ScenarioSweep},
	}
}

// All runs every experiment at the given scale: the paper's artifacts
// first, then the ablations and sweeps this reproduction adds.
func All(s Scale) ([]*Result, error) {
	runners := Runners()
	out := make([]*Result, 0, len(runners))
	for _, rn := range runners {
		r, err := rn.Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ByName resolves an experiment id like "table2" or "fig5" against the
// runner registry.
func ByName(name string) (func(Scale) (*Result, error), error) {
	want := strings.ToLower(strings.TrimSpace(name))
	names := make([]string, 0, len(Runners()))
	for _, rn := range Runners() {
		if rn.Name == want {
			return rn.Run, nil
		}
		for _, a := range rn.Aliases {
			if a == want {
				return rn.Run, nil
			}
		}
		names = append(names, rn.Name)
	}
	return nil, fmt.Errorf("unknown experiment %q (registered: %s)", name, strings.Join(names, ", "))
}
