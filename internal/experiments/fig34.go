package experiments

import (
	"fmt"
	"time"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/sim/traffic"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// Fig3 reproduces "Traffic: Indexing vs. Segment Length": total simulation
// time as the segment (and with it the vehicle count) grows, for the
// hand-coded MITSIM, BRACE without indexing (quadratic) and BRACE with the
// KD-tree index (log-linear).
func Fig3(s Scale) (*Result, error) {
	base := 20000 * s.Factor
	// Below ~16000 units the vehicle counts are small enough that fixed
	// per-tick overheads mask the quadratic-vs-log-linear separation the
	// figure is about (and ρ=200 covers too much of the road) — keep the
	// sweep in the paper's regime.
	if base < 16000 {
		base = 16000
	}
	lengths := []float64{base * 0.25, base * 0.5, base * 0.75, base}

	mitsim := &stats.Series{Label: "MITSIM"}
	noidx := &stats.Series{Label: "BRACE - no indexing"}
	idx := &stats.Series{Label: "BRACE - indexing"}
	noidxWork := &stats.Series{Label: "no indexing"}
	idxWork := &stats.Series{Label: "indexing"}

	for _, L := range lengths {
		p := traffic.DefaultParams(L)

		mit := traffic.NewMITSIM(p, s.Seed)
		mit.RunTicks(s.WarmupTicks)
		start := time.Now()
		mit.RunTicks(s.Ticks)
		mitsim.Add(L, time.Since(start).Seconds())

		for _, cfg := range []struct {
			kind         spatial.Kind
			series, work *stats.Series
		}{
			{spatial.KindScan, noidx, noidxWork},
			{spatial.KindKDTree, idx, idxWork},
		} {
			m := traffic.NewModel(p)
			eng, err := engine.NewSequential(m, m.NewPopulation(s.Seed), cfg.kind, s.Seed)
			if err != nil {
				return nil, err
			}
			if err := eng.RunTicks(s.WarmupTicks); err != nil {
				return nil, err
			}
			before := eng.Visited()
			start := time.Now()
			if err := eng.RunTicks(s.Ticks); err != nil {
				return nil, err
			}
			cfg.series.Add(L, time.Since(start).Seconds())
			cfg.work.Add(L, float64(eng.Visited()-before))
		}
	}
	return &Result{
		ID:     "Figure 3",
		Title:  "Traffic: total simulation time vs segment length",
		XName:  "segment",
		Series: []*stats.Series{mitsim, noidx, idx},
		Work:   []*stats.Series{noidxWork, idxWork},
		PaperClaim: "no-indexing grows quadratically; indexing converts the probe to an " +
			"orthogonal range query giving log-linear growth, comparable to but slightly " +
			"slower than MITSIM's hand-coded nearest-neighbor lists",
		Notes: fmt.Sprintf("%d measured ticks per point, wall-clock, single node", s.Ticks),
	}, nil
}

// Fig4 reproduces "Fish: Indexing vs. Visibility": total simulation time
// as the visibility range ρ grows; indexing wins 2–3× but the gap narrows
// as each probe returns more of the school.
func Fig4(s Scale) (*Result, error) {
	n := int(8000 * s.Factor)
	// The index needs enough fish that a probe's candidate set is a small
	// fraction of the school; below ~2000 the per-tick KD rebuild
	// dominates and the comparison leaves the paper's regime.
	if n < 2000 {
		n = 2000
	}
	base := fish.DefaultParams()
	// Spread the ocean so the visibility sweep spans "few neighbors" to "a
	// good chunk of the school" (the paper sweeps 25–300 on its ocean),
	// and slow the fish so the density profile stays put over the short
	// measured window — otherwise attraction collapses the school into a
	// ball and every probe degenerates to a full scan regardless of index.
	base.SchoolRadius = 800
	base.Alpha = 2
	base.Speed = 0.2
	base.InformedFrac = 0

	visibilities := []float64{10, 25, 50, 100, 150}

	noidx := &stats.Series{Label: "BRACE - no indexing"}
	idx := &stats.Series{Label: "BRACE - indexing"}
	noidxWork := &stats.Series{Label: "no indexing"}
	idxWork := &stats.Series{Label: "indexing"}

	for _, rho := range visibilities {
		p := base
		p.Rho = rho
		for _, cfg := range []struct {
			kind         spatial.Kind
			series, work *stats.Series
		}{
			{spatial.KindScan, noidx, noidxWork},
			{spatial.KindKDTree, idx, idxWork},
		} {
			m := fish.NewModel(p)
			eng, err := engine.NewSequential(m, m.NewPopulation(n, s.Seed), cfg.kind, s.Seed)
			if err != nil {
				return nil, err
			}
			if err := eng.RunTicks(s.WarmupTicks); err != nil {
				return nil, err
			}
			before := eng.Visited()
			start := time.Now()
			if err := eng.RunTicks(s.Ticks); err != nil {
				return nil, err
			}
			cfg.series.Add(rho, time.Since(start).Seconds())
			cfg.work.Add(rho, float64(eng.Visited()-before))
		}
	}
	return &Result{
		ID:     "Figure 4",
		Title:  "Fish: total simulation time vs visibility range",
		XName:  "visibility",
		Series: []*stats.Series{noidx, idx},
		Work:   []*stats.Series{noidxWork, idxWork},
		PaperClaim: "KD-tree indexing is 2-3x faster across the range; its advantage " +
			"shrinks as visibility grows because each probe returns more results",
		Notes: fmt.Sprintf("%d fish, %d measured ticks per point, wall-clock, single node", n, s.Ticks),
	}, nil
}
