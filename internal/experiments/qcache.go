package experiments

import (
	"fmt"
	"strings"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// AblationQueryCache measures the Verlet query cache (the fast path
// layered over the paper's §5.2 indexing): every registered scenario runs
// on the sequential engine with the cache off and on, reporting wall
// throughput for both, with the cost-model split — how many query phases
// were full index rebuilds vs candidate-list reuses — in the notes. The
// adaptive gate means "cache on" never loses: workloads that outrun the
// skin (fast random walks with tiny probe radii) degrade to the plain
// rebuild path after one miss cycle, which the builds/reuses split makes
// visible.
func AblationQueryCache(s Scale) (*Result, error) {
	off := &stats.Series{Label: "cache off"}
	on := &stats.Series{Label: "cache on"}
	var notes []string
	ticks := s.Ticks + s.WarmupTicks
	for xi, sp := range scenario.All() {
		cfg := sweepConfig(sp, s)
		var cacheLine string
		for _, skin := range []float64{-1, 0} {
			m, pop, err := sp.New(cfg)
			if err != nil {
				return nil, err
			}
			eng, err := engine.NewSequentialCache(m, pop, spatial.KindKDTree, s.Seed, skin)
			if err != nil {
				return nil, err
			}
			if err := eng.RunTicks(ticks); err != nil {
				return nil, err
			}
			if skin < 0 {
				off.Add(float64(xi), eng.ThroughputWall())
			} else {
				on.Add(float64(xi), eng.ThroughputWall())
				cs := eng.CacheStats()
				cacheLine = fmt.Sprintf("%s=%db/%dr", sp.Name, cs.Builds, cs.Reuses)
			}
		}
		notes = append(notes, cacheLine)
	}
	return &Result{
		ID:     "Query Cache",
		Title:  "ablation: Verlet query cache off vs on (agent-ticks/s, sequential engine)",
		XName:  "scenario #",
		Series: []*stats.Series{off, on},
		PaperClaim: "beyond the paper: §5.2 rebuilds the spatial index every tick; candidate-list " +
			"reuse with a skin radius removes the per-tick rebuild and per-probe sort when motion allows",
		Notes: "builds/reuses per scenario: " + strings.Join(notes, " "),
	}, nil
}
