package experiments

import "testing"

func TestAblationCollocationShape(t *testing.T) {
	r, err := AblationCollocation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	frac := r.Series[0]
	// One worker: everything is collocated, nothing crosses the network.
	if frac.Y[0] != 0 {
		t.Errorf("network fraction at 1 worker = %v, want 0", frac.Y[0])
	}
	// More workers → more boundary → larger (but never total) network
	// share. The last point must exceed the first and stay below 1.
	last := frac.Y[len(frac.Y)-1]
	if last <= 0 || last >= 1 {
		t.Errorf("network fraction at max workers = %v, want in (0,1)", last)
	}
	// Collocation must keep a meaningful share local even at max workers:
	// this is the point of §3.3.
	if last > 0.9 {
		t.Errorf("collocation saves almost nothing: %v", last)
	}
}

func TestAblationCheckpointIntervalShape(t *testing.T) {
	r, err := AblationCheckpointInterval(tiny())
	if err != nil {
		t.Fatal(err)
	}
	cost, reexec := r.Series[0], r.Series[1]
	if len(cost.Y) < 3 {
		t.Fatalf("too few interval points")
	}
	// Re-executed work grows with the checkpoint interval (rolling back
	// farther after the crash).
	first, last := reexec.Y[0], reexec.Y[len(reexec.Y)-1]
	if last <= first {
		t.Errorf("re-executed ticks did not grow with interval: %v -> %v", first, last)
	}
	// The cost curve is not monotone in either direction alone — the Daly
	// trade-off means neither endpoint should be the unique minimum of
	// everything: check the curve actually varies.
	min, max := cost.Y[0], cost.Y[0]
	for _, y := range cost.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if max <= min {
		t.Errorf("cost curve is flat: %v", cost.Y)
	}
}

func TestAblationInversionPassShape(t *testing.T) {
	r, err := AblationInversionPass(tiny())
	if err != nil {
		t.Fatal(err)
	}
	y := r.Series[0].Y
	if len(y) != 2 {
		t.Fatalf("variants = %d", len(y))
	}
	// The inverted (one-reduce) compile must beat the as-written
	// (two-reduce) compile.
	if y[1] <= y[0] {
		t.Errorf("inversion pass did not pay: as-written %v vs inverted %v", y[0], y[1])
	}
}
