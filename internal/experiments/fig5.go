package experiments

import (
	"fmt"

	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/predator"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// Fig5 reproduces "Predator: Effect Inversion": agent-tick throughput of
// the predator simulation on 16 workers under the four optimizer
// configurations — No-Opt (non-local script, no index), Idx-Only, Inv-Only
// (effect-inverted script, one reduce pass), and Idx+Inv.
//
// The engine runs the non-local variants with two reduce passes per tick
// and the inverted variants with one, exactly the configuration the paper
// benchmarks; throughput is virtual-time (simulated 16-node cluster).
func Fig5(s Scale) (*Result, error) {
	const workers = 16
	n := int(20000 * s.Factor)
	if n < 1000 {
		n = 1000
	}
	ticks := s.Ticks

	cm := cluster.DefaultCostModel()
	series := &stats.Series{Label: "Throughput [agent ticks/sec]"}
	configs := []struct {
		name     string
		inverted bool
		kind     spatial.Kind
	}{
		{"No-Opt", false, spatial.KindScan},
		{"Idx-Only", false, spatial.KindKDTree},
		{"Inv-Only", true, spatial.KindScan},
		{"Idx+Inv", true, spatial.KindKDTree},
	}
	var notes []string
	for i, cfg := range configs {
		m := predator.NewModel(predator.DefaultParams(), cfg.inverted)
		pop := m.NewPopulation(n, s.Seed)
		eng, err := engine.NewDistributed(m, pop, engine.Options{
			Workers:   workers,
			Index:     cfg.kind,
			Seed:      s.Seed,
			CostModel: &cm,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(ticks); err != nil {
			return nil, err
		}
		tput := eng.ThroughputVirtual()
		series.Add(float64(i), tput)
		notes = append(notes, fmt.Sprintf("%s=%.3g", cfg.name, tput))
	}
	return &Result{
		ID:     "Figure 5",
		Title:  "Predator: effect inversion (x = 0:No-Opt 1:Idx-Only 2:Inv-Only 3:Idx+Inv)",
		XName:  "config",
		Series: []*stats.Series{series},
		PaperClaim: "inversion lifts throughput >20% in both index settings " +
			"(2.95M->3.63M without index, 3.59M->4.36M with index) by eliminating the " +
			"second reduce pass",
		Notes: fmt.Sprintf("%d agents, 16 simulated workers, %d ticks, virtual-time throughput; %s",
			n, ticks, joinNotes(notes)),
	}, nil
}

func joinNotes(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
