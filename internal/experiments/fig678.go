package experiments

import (
	"fmt"
	"math"

	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/sim/traffic"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// scaleUpWorkers is the node sweep used by Figs. 6–7 (the paper sweeps 1
// to 36 slave nodes); reduced scales use a shorter sweep so the quick
// harness stays fast.
func scaleUpWorkers(s Scale) []int {
	if s.Factor < 0.5 {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 4, 8, 16, 24, 36}
}

// Fig6 reproduces "Traffic: Scalability": agent-tick throughput as nodes
// grow with the problem size scaled linearly (scale-up, not speed-up).
// Traffic density is nearly uniform, so load stays balanced with the load
// balancer disabled and throughput grows linearly.
func Fig6(s Scale) (*Result, error) {
	// Per-worker segment must be long enough that per-tick compute
	// dominates the boundary-replica network traffic (the paper's per-node
	// partitions are km-scale); below that the simulated network hides the
	// linear scale-up the experiment is about.
	perWorkerLength := 4000 * s.Factor
	if perWorkerLength < 2500 {
		perWorkerLength = 2500
	}
	cm := cluster.DefaultCostModel()
	series := &stats.Series{Label: "BRACE - indexing, no LB"}
	for _, w := range scaleUpWorkers(s) {
		p := traffic.DefaultParams(perWorkerLength * float64(w))
		m := traffic.NewModel(p)
		eng, err := engine.NewDistributed(m, m.NewPopulation(s.Seed), engine.Options{
			Workers:   w,
			Index:     spatial.KindKDTree,
			Seed:      s.Seed,
			CostModel: &cm,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(s.Ticks); err != nil {
			return nil, err
		}
		series.Add(float64(w), eng.ThroughputVirtual())
	}
	return &Result{
		ID:     "Figure 6",
		Title:  "Traffic: throughput vs slave nodes (problem scaled with nodes)",
		XName:  "# workers",
		Series: []*stats.Series{series},
		PaperClaim: "throughput grows linearly with node count even without load " +
			"balancing, because the uniform road keeps load balanced (the paper's dip " +
			"near 20 nodes is a multi-switch artifact of their cluster)",
		Notes: fmt.Sprintf("segment %.0f per worker, %d ticks, virtual-time throughput on the simulated cluster",
			perWorkerLength, s.Ticks),
	}, nil
}

// fishScaleEngine builds the Fig. 7/8 fish workload: two informed classes
// pulling the school apart along x. The school radius grows with √n so
// density (and with it per-fish query cost) stays constant across the
// scale-up sweep, and the swim speed is raised so the schools separate
// across partitions within the measured window.
func fishScaleEngine(s Scale, n, workers int, lb bool, epochTicks int) (*engine.Distributed, error) {
	p := fish.DefaultParams()
	p.InformedFrac = 0.2
	p.Omega = 0.8
	p.Speed = 2.5
	p.Rho = 4
	p.Alpha = 1
	p.SchoolRadius = 12 * math.Sqrt(float64(n)/150)
	m := fish.NewModel(p)
	cm := cluster.DefaultCostModel()
	return engine.NewDistributed(m, m.NewPopulation(n, s.Seed), engine.Options{
		Workers:     workers,
		Index:       spatial.KindKDTree,
		Seed:        s.Seed,
		CostModel:   &cm,
		LoadBalance: lb,
		Tunables:    cluster.Tunables{EpochTicks: epochTicks},
	})
}

// Fig7 reproduces "Fish: Scalability": with load balancing the fish
// simulation scales linearly; without it the two emerging schools
// concentrate on two nodes and throughput collapses.
func Fig7(s Scale) (*Result, error) {
	perWorker := int(1500 * s.Factor)
	if perWorker < 120 {
		perWorker = 120
	}
	// The schools must have time to separate across partitions; the
	// separation distance scales with the school radius (√n), so the tick
	// budget here is fixed rather than scaled.
	const ticks = 48
	withLB := &stats.Series{Label: "BRACE - indexing, LB"}
	noLB := &stats.Series{Label: "BRACE - indexing, No LB"}
	for _, w := range scaleUpWorkers(s) {
		for _, cfg := range []struct {
			lb     bool
			series *stats.Series
		}{
			{true, withLB},
			{false, noLB},
		} {
			eng, err := fishScaleEngine(s, perWorker*w, w, cfg.lb, 4)
			if err != nil {
				return nil, err
			}
			if err := eng.RunTicks(ticks); err != nil {
				return nil, err
			}
			cfg.series.Add(float64(w), eng.ThroughputVirtual())
		}
	}
	return &Result{
		ID:     "Figure 7",
		Title:  "Fish: throughput vs slave nodes, with and without load balancing",
		XName:  "# workers",
		Series: []*stats.Series{withLB, noLB},
		PaperClaim: "with LB the partition grids are adjusted periodically and throughput " +
			"grows linearly; without LB two fish schools end up on the two extreme nodes " +
			"and the other nodes idle",
		Notes: fmt.Sprintf("%d fish per worker, %d ticks, virtual-time throughput", perWorker, 48),
	}, nil
}

// Fig8 reproduces "Fish: Load Balancing": per-epoch simulation time over
// the run; flat with LB, rising toward the two-node plateau without.
func Fig8(s Scale) (*Result, error) {
	const workers = 16
	n := int(8000 * s.Factor)
	if n < 600 {
		n = 600
	}
	epochTicks := 5
	epochs := s.Ticks // one recorded point per epoch

	withLB := &stats.Series{Label: "BRACE - indexing, LB"}
	noLB := &stats.Series{Label: "BRACE - indexing, no LB"}
	for _, cfg := range []struct {
		lb     bool
		series *stats.Series
	}{
		{true, withLB},
		{false, noLB},
	} {
		eng, err := fishScaleEngine(s, n, workers, cfg.lb, epochTicks)
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(epochs * epochTicks); err != nil {
			return nil, err
		}
		for i, ep := range eng.Epochs() {
			cfg.series.Add(float64(i+1), ep.VirtualSec)
		}
	}
	return &Result{
		ID:     "Figure 8",
		Title:  "Fish: epoch simulation time vs epoch number",
		XName:  "epoch",
		Series: []*stats.Series{noLB, withLB},
		PaperClaim: "with load balancing the per-epoch time stays essentially flat; " +
			"without it the epoch time gradually rises to the value of all agents being " +
			"simulated by only two nodes",
		Notes: fmt.Sprintf("%d fish, 16 workers, epoch = %d ticks, %d epochs, virtual seconds per epoch",
			n, epochTicks, epochs),
	}, nil
}
