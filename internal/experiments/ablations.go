package experiments

import (
	"fmt"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/fish"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// This file holds ablations beyond the paper's figures, for the design
// choices DESIGN.md calls out: task collocation (§3.3), the checkpoint
// interval (§3.3 cites Daly [13]), and effect inversion as an automatic
// compiler pass (§4.2 — the paper hand-wrote both predator scripts).

// AblationCollocation quantifies §3.3's collocation of tasks: the fraction
// of message bytes that bypass the network because a partition's map and
// reduce tasks share a worker, across the scale-up sweep. Without
// collocation every byte would cross the network.
func AblationCollocation(s Scale) (*Result, error) {
	n := int(2000 * s.Factor)
	if n < 400 {
		n = 400
	}
	frac := &stats.Series{Label: "network byte fraction"}
	saved := &stats.Series{Label: "bytes kept local (MB)"}
	for _, w := range scaleUpWorkers(s) {
		p := fish.DefaultParams()
		m := fish.NewModel(p)
		cm := cluster.DefaultCostModel()
		eng, err := engine.NewDistributed(m, m.NewPopulation(n, s.Seed), engine.Options{
			Workers: w, Index: spatial.KindKDTree, Seed: s.Seed, CostModel: &cm,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(s.Ticks); err != nil {
			return nil, err
		}
		mt := eng.Runtime().Transport().Metrics()
		frac.Add(float64(w), mt.NetworkFraction())
		saved.Add(float64(w), float64(mt.Totals().LocalBytes)/1e6)
	}
	return &Result{
		ID:     "Ablation A1",
		Title:  "Collocation: fraction of bytes crossing the network vs workers",
		XName:  "# workers",
		Series: []*stats.Series{frac, saved},
		PaperClaim: "collocating a partition's map and reduce tasks lets agents that stay " +
			"in place travel through memory; only boundary replicas cross the network (§3.3)",
		Notes: fmt.Sprintf("%d fish, %d ticks; 1 worker = everything local by construction", n, s.Ticks),
	}, nil
}

// AblationCheckpointInterval reproduces the Young/Daly trade-off the paper
// cites [13]: sweeping the checkpoint interval under a fixed failure
// schedule, total completion cost is U-shaped — frequent checkpoints waste
// checkpoint overhead, rare ones waste re-execution. Re-execution cost is
// measured (rolled-back ticks really re-run on the virtual clock);
// checkpoint overhead is charged analytically at δ seconds each.
func AblationCheckpointInterval(s Scale) (*Result, error) {
	const workers = 4
	n := int(1500 * s.Factor)
	if n < 300 {
		n = 300
	}
	totalTicks := s.Ticks * 10
	// One crash in the middle of the run.
	crashTick := uint64(totalTicks / 2)

	// δ: coordinated checkpoint cost — each worker serializes its owned
	// agents to stable storage.
	p := fish.DefaultParams()
	m := fish.NewModel(p)
	bytesPerWorker := float64(n) / workers * float64(m.Schema().ByteSize())
	const diskBytesPerSec = 100e6 // 2010-era disk
	delta := bytesPerWorker / diskBytesPerSec

	cost := &stats.Series{Label: "total virtual cost (s)"}
	reexec := &stats.Series{Label: "re-executed ticks"}
	for _, everyEpochs := range []int{1, 2, 5, 10, 25} {
		cm := cluster.DefaultCostModel()
		fp := cluster.NewFailurePlan().CrashAt(crashTick, 1)
		eng, err := engine.NewDistributed(m, m.NewPopulation(n, s.Seed), engine.Options{
			Workers: workers, Index: spatial.KindKDTree, Seed: s.Seed,
			CostModel: &cm,
			Tunables:  cluster.Tunables{EpochTicks: 2, CheckpointEveryEpochs: everyEpochs},
			Failures:  fp,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(totalTicks); err != nil {
			return nil, err
		}
		checkpoints := totalTicks / (2 * everyEpochs)
		total := eng.VirtualSeconds() + float64(checkpoints)*delta
		interval := float64(2 * everyEpochs)
		cost.Add(interval, total)
		// Ticks re-executed = agent-ticks beyond the failure-free count,
		// normalized by population.
		extra := eng.AgentTicks() - int64(totalTicks)*int64(n)
		reexec.Add(interval, float64(extra)/float64(n))
	}
	return &Result{
		ID:     "Ablation A2",
		Title:  "Checkpoint interval vs total cost under one mid-run failure",
		XName:  "interval (ticks)",
		Series: []*stats.Series{cost, reexec},
		PaperClaim: "the paper defers to Daly's optimum t≈sqrt(2δM); short intervals pay " +
			"checkpoint overhead, long ones pay re-execution after a crash",
		Notes: fmt.Sprintf("%d fish, %d ticks, crash at tick %d, δ=%.2gs per checkpoint",
			n, totalTicks, crashTick, delta),
	}, nil
}

// pushBallSrc is a BRASIL script with a non-local assignment used to
// demonstrate the inversion pass end to end.
const pushBallSrc = `
class Ball {
  public state float x : x + pushx * 0.05; #range[-6,6];
  public state float y : y + pushy * 0.05; #range[-6,6];
  public state float w : w;
  public effect float pushx : sum;
  public effect float pushy : sum;
  public void run() {
    foreach (Ball p : Extent<Ball>) {
      if (p != this) {
        if (dist(this, p) < 3) {
          p.pushx <- (p.x - x) * w;
          p.pushy <- (p.y - y) * w;
        }
      }
    }
  }
}
`

// AblationInversionPass runs the same BRASIL script compiled (a) as
// written — non-local, two reduce passes — and (b) through the automatic
// effect-inversion pass — local, one reduce pass — and reports virtual
// throughput plus the maximum state divergence (which must be zero on the
// sequential engine and FP-reassociation-sized when distributed).
func AblationInversionPass(s Scale) (*Result, error) {
	n := int(3000 * s.Factor)
	if n < 500 {
		n = 500
	}
	const workers = 8
	ticks := s.Ticks

	tput := &stats.Series{Label: "throughput [agent ticks/s]"}
	var agents []int
	for i, invert := range []bool{false, true} {
		prog, err := brasil.Compile(pushBallSrc, brasil.CompileOptions{Invert: invert})
		if err != nil {
			return nil, err
		}
		pop := seedBalls(prog, n, s.Seed)
		cm := cluster.DefaultCostModel()
		eng, err := engine.NewDistributed(prog, pop, engine.Options{
			Workers: workers, Index: spatial.KindKDTree, Seed: s.Seed, CostModel: &cm,
		})
		if err != nil {
			return nil, err
		}
		if err := eng.RunTicks(ticks); err != nil {
			return nil, err
		}
		tput.Add(float64(i), eng.ThroughputVirtual())
		agents = append(agents, len(eng.Agents()))
	}
	return &Result{
		ID:     "Ablation A3",
		Title:  "Compiler effect-inversion pass (x = 0: as written, 1: inverted)",
		XName:  "variant",
		Series: []*stats.Series{tput},
		PaperClaim: "the paper hand-wrote local and non-local predator scripts because " +
			"inversion was 'not yet implemented in the BRASIL Compiler'; here the compiler " +
			"performs the Theorem 2 rewrite automatically",
		Notes: fmt.Sprintf("%d agents, %d workers, %d ticks; populations %v (must match); "+
			"bit-exact equivalence is asserted by the brasil and monad test suites",
			n, workers, ticks, agents),
	}, nil
}

// seedBalls scatters n Ball agents uniformly with random weights.
func seedBalls(prog *brasil.Program, n int, seed uint64) []*agent.Agent {
	s := prog.Schema()
	wi := s.StateIndex("w")
	pop := make([]*agent.Agent, n)
	for i := range pop {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(s, id)
		a.State[s.StateIndex("x")] = rng.Float64() * 80
		a.State[s.StateIndex("y")] = rng.Float64() * 80
		a.State[wi] = rng.Range(0.5, 1.5)
		pop[i] = a
	}
	return pop
}
