package experiments

import (
	"fmt"
	"strings"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// AblationOverlap measures the overlapped two-pass tick (overlap.go in
// internal/engine): every local-effect scenario runs on the distributed
// engine with the split off and on, reporting wall throughput for both.
// The two runs must end bit-identical — the overlap changes scheduling,
// never results — and the notes report how much interior-pass compute each
// scenario ran inside the barrier wait (the time the split hides). Non-
// local scenarios are skipped: their reduce₂ phase needs the full visible
// set, so the engine never splits them.
func AblationOverlap(s Scale) (*Result, error) {
	const workers = 4
	off := &stats.Series{Label: "overlap off"}
	on := &stats.Series{Label: "overlap on"}
	var notes []string
	ticks := s.Ticks + s.WarmupTicks
	xi := 0
	for _, sp := range scenario.All() {
		if !sp.LocalOnly {
			continue
		}
		cfg := sweepConfig(sp, s)
		var pops [2][]float64 // flattened states for the identity check
		var final [2]*engine.Distributed
		for i, noOverlap := range []bool{true, false} {
			m, pop, err := sp.New(cfg)
			if err != nil {
				return nil, err
			}
			eng, err := engine.NewDistributed(m, pop, engine.Options{
				Workers:   workers,
				Index:     spatial.KindKDTree,
				Seed:      s.Seed,
				NoOverlap: noOverlap,
			})
			if err != nil {
				return nil, err
			}
			if noOverlap == eng.Overlapped() {
				return nil, fmt.Errorf("overlap ablation: %s: Overlapped()=%v with NoOverlap=%v",
					sp.Name, eng.Overlapped(), noOverlap)
			}
			if err := eng.RunTicks(ticks); err != nil {
				return nil, err
			}
			final[i] = eng
			for _, a := range eng.Agents() {
				pops[i] = append(pops[i], float64(a.ID))
				pops[i] = append(pops[i], a.State...)
			}
			if noOverlap {
				off.Add(float64(xi), eng.ThroughputWall())
			} else {
				on.Add(float64(xi), eng.ThroughputWall())
			}
		}
		if len(pops[0]) != len(pops[1]) {
			return nil, fmt.Errorf("overlap ablation: %s: population size diverged", sp.Name)
		}
		for j := range pops[0] {
			if pops[0][j] != pops[1][j] {
				return nil, fmt.Errorf("overlap ablation: %s: final state diverged at word %d", sp.Name, j)
			}
		}
		notes = append(notes, fmt.Sprintf("%s=%.0fms", sp.Name, 1000*final[1].OverlapSeconds()))
		xi++
	}
	return &Result{
		ID:     "Overlap",
		Title:  "ablation: overlapped two-pass tick off vs on (agent-ticks/s, distributed engine)",
		XName:  "scenario #",
		Series: []*stats.Series{off, on},
		PaperClaim: "beyond the paper: §4.2 barriers every tick on envelope exchange; splitting each " +
			"tick into an interior pass (runs while envelopes are in flight) and a boundary pass hides " +
			"compute behind the barrier wait, bit-identically",
		Notes: "interior-pass compute run inside the barrier wait: " + strings.Join(notes, " "),
	}, nil
}
