package experiments

import (
	"strings"
	"testing"

	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/stats"
)

// tiny returns a scale small enough for unit tests; the *shapes* asserted
// below are the paper's claims, which must hold even at reduced size.
func tiny() Scale { return Scale{Factor: 0.06, Ticks: 12, WarmupTicks: 3, Seed: 7} }

func TestTable2ShowsStrongAgreement(t *testing.T) {
	r, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Velocity agreement is the paper's headline (0.007%); allow a
		// loose ceiling at test scale but catch divergence.
		if row.MeanV > 0.15 {
			t.Errorf("lane %d velocity RMSPE %.3f too large", row.Lane, row.MeanV)
		}
		if row.Density > 1.0 {
			t.Errorf("lane %d density RMSPE %.3f too large", row.Lane, row.Density)
		}
	}
	if !strings.Contains(r.String(), "Table 2") {
		t.Error("render missing header")
	}
}

func TestFig3Shapes(t *testing.T) {
	r, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	var mitsim, noidx, idx *stats.Series
	for _, s := range r.Series {
		switch s.Label {
		case "MITSIM":
			mitsim = s
		case "BRACE - no indexing":
			noidx = s
		case "BRACE - indexing":
			idx = s
		}
	}
	// Wall-clock numbers are reported but not asserted: test binaries run
	// concurrently on shared cores and the timer noise swamps the signal
	// (cmd/experiments runs serially and shows the expected ordering).
	// Sanity: every configuration produced positive timings.
	last := len(noidx.Y) - 1
	for _, srs := range []*stats.Series{mitsim, noidx, idx} {
		for _, y := range srs.Y {
			if y <= 0 {
				t.Fatalf("%s produced non-positive timing %v", srs.Label, y)
			}
		}
	}
	_ = last
	// The mechanism, asserted on deterministic work counters: candidates
	// examined grow quadratically without the index (every vehicle
	// enumerates every other vehicle) and far slower with it.
	var noW, idxW *stats.Series
	for _, s := range r.Work {
		if s.Label == "no indexing" {
			noW = s
		} else {
			idxW = s
		}
	}
	kScan, err := stats.GrowthExponent(noW.X, noW.Y)
	if err != nil {
		t.Fatal(err)
	}
	kIdx, err := stats.GrowthExponent(idxW.X, idxW.Y)
	if err != nil {
		t.Fatal(err)
	}
	if kScan < 1.8 {
		t.Errorf("no-index work exponent %.2f, want ~2 (quadratic)", kScan)
	}
	if kIdx > kScan-0.4 {
		t.Errorf("index work exponent %.2f not clearly below quadratic %.2f", kIdx, kScan)
	}
	for i := range noW.Y {
		if idxW.Y[i] >= noW.Y[i] {
			t.Errorf("at segment %v index examined %v ≥ scan %v", noW.X[i], idxW.Y[i], noW.Y[i])
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	r, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	noidx, idx := r.Series[0], r.Series[1]
	// Wall clock is reported, not asserted (shared-core timer noise);
	// sanity-check positivity only.
	for _, srs := range []*stats.Series{noidx, idx} {
		for _, y := range srs.Y {
			if y <= 0 {
				t.Fatalf("%s produced non-positive timing %v", srs.Label, y)
			}
		}
	}
	// Mechanism on deterministic counters: the index examines strictly
	// fewer candidates at every visibility, and its advantage narrows as
	// the radius grows (more of the school matches each probe).
	var noW, idxW *stats.Series
	for _, s := range r.Work {
		if s.Label == "no indexing" {
			noW = s
		} else {
			idxW = s
		}
	}
	for i := range idxW.Y {
		if idxW.Y[i] >= noW.Y[i] {
			t.Errorf("at visibility %v index examined %v ≥ scan %v", idxW.X[i], idxW.Y[i], noW.Y[i])
		}
	}
	s0 := noW.Y[0] / idxW.Y[0]
	sLast := noW.Y[len(idxW.Y)-1] / idxW.Y[len(idxW.Y)-1]
	if sLast >= s0 {
		t.Errorf("index advantage should narrow with visibility: %.2fx -> %.2fx", s0, sLast)
	}
	if s0 < 3 {
		t.Errorf("index should dominate at small visibility: only %.2fx", s0)
	}
}

func TestFig5Shapes(t *testing.T) {
	r, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	y := r.Series[0].Y // [No-Opt, Idx-Only, Inv-Only, Idx+Inv]
	if len(y) != 4 {
		t.Fatalf("configs = %d", len(y))
	}
	noOpt, idxOnly, invOnly, idxInv := y[0], y[1], y[2], y[3]
	if invOnly <= noOpt {
		t.Errorf("inversion alone should beat No-Opt: %v vs %v", invOnly, noOpt)
	}
	if idxInv <= idxOnly {
		t.Errorf("inversion should beat Idx-Only with indexing on: %v vs %v", idxInv, idxOnly)
	}
	if idxOnly <= noOpt {
		t.Errorf("indexing should beat No-Opt: %v vs %v", idxOnly, noOpt)
	}
	if idxInv <= noOpt {
		t.Errorf("both optimizations should beat none: %v vs %v", idxInv, noOpt)
	}
	// The paper reports >20% from inversion in each index setting; allow
	// ≥10% at test scale.
	if invOnly/noOpt < 1.10 {
		t.Errorf("inversion gain too small without index: %.2fx", invOnly/noOpt)
	}
	if idxInv/idxOnly < 1.10 {
		t.Errorf("inversion gain too small with index: %.2fx", idxInv/idxOnly)
	}
}

func TestFig6LinearScaleUp(t *testing.T) {
	r, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	y := r.Series[0].Y
	x := r.Series[0].X
	if !stats.MonotoneIncreasing(y, 0.15) {
		t.Errorf("traffic throughput not monotone: %v", y)
	}
	// Scale-up efficiency: throughput at 36 workers should be a large
	// multiple of 1 worker (linear in the paper).
	gain := y[len(y)-1] / y[0]
	workers := x[len(x)-1] / x[0]
	if gain < workers*0.5 {
		t.Errorf("scale-up efficiency too low: %vx throughput over %vx workers", gain, workers)
	}
}

func TestFig7LoadBalancingScaleUp(t *testing.T) {
	r, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var withLB, noLB *stats.Series
	for _, s := range r.Series {
		if strings.Contains(s.Label, "No LB") {
			noLB = s
		} else {
			withLB = s
		}
	}
	last := len(withLB.Y) - 1
	// LB must win at scale.
	if withLB.Y[last] <= noLB.Y[last] {
		t.Errorf("LB (%v) should beat no-LB (%v) at %v workers",
			withLB.Y[last], noLB.Y[last], withLB.X[last])
	}
	// LB-enabled series keeps growing.
	if !stats.MonotoneIncreasing(withLB.Y, 0.2) {
		t.Errorf("LB throughput not monotone: %v", withLB.Y)
	}
	// Without LB, scale-up efficiency collapses relative to LB.
	gainLB := withLB.Y[last] / withLB.Y[0]
	gainNo := noLB.Y[last] / noLB.Y[0]
	if gainNo >= gainLB {
		t.Errorf("no-LB efficiency (%vx) should trail LB (%vx)", gainNo, gainLB)
	}
}

func TestFig8EpochTimes(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var withLB, noLB *stats.Series
	for _, s := range r.Series {
		if strings.Contains(s.Label, "no LB") {
			noLB = s
		} else {
			withLB = s
		}
	}
	if len(withLB.Y) < 5 || len(noLB.Y) < 5 {
		t.Fatalf("too few epochs: %d/%d", len(withLB.Y), len(noLB.Y))
	}
	// Late-run epochs without LB cost more than with LB.
	tailLB := mean(withLB.Y[len(withLB.Y)/2:])
	tailNo := mean(noLB.Y[len(noLB.Y)/2:])
	if tailNo <= tailLB {
		t.Errorf("late epochs: no-LB (%v) should cost more than LB (%v)", tailNo, tailLB)
	}
	// The no-LB epoch time rises over the run.
	headNo := mean(noLB.Y[:len(noLB.Y)/2])
	if tailNo <= headNo {
		t.Errorf("no-LB epoch time did not rise: %v -> %v", headNo, tailNo)
	}
}

func TestAllAndByName(t *testing.T) {
	if _, err := ByName("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("table2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Every registered runner resolves by name and by each alias.
	for _, rn := range Runners() {
		if _, err := ByName(rn.Name); err != nil {
			t.Errorf("runner %q not resolvable: %v", rn.Name, err)
		}
		for _, a := range rn.Aliases {
			if _, err := ByName(a); err != nil {
				t.Errorf("alias %q of %q not resolvable: %v", a, rn.Name, err)
			}
		}
	}
}

func TestScenarioSweepCoversRegistry(t *testing.T) {
	r, err := ScenarioSweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(scenario.All()) {
		t.Fatalf("series = %d, want one per scenario (%d)", len(r.Series), len(scenario.All()))
	}
	for i, sp := range scenario.All() {
		srs := r.Series[i]
		if srs.Label != sp.Name {
			t.Errorf("series %d labeled %q, want %q", i, srs.Label, sp.Name)
		}
		for j, y := range srs.Y {
			if y <= 0 {
				t.Errorf("%s: non-positive throughput %v at %v workers", sp.Name, y, srs.X[j])
			}
		}
		// Scale-up sanity: 8 workers should beat 1 worker on every
		// scenario (virtual time, so no shared-core timer noise).
		if last := len(srs.Y) - 1; srs.Y[last] <= srs.Y[0] {
			t.Errorf("%s: no scale-up: %v workers %v ≤ 1 worker %v",
				sp.Name, srs.X[last], srs.Y[last], srs.Y[0])
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
