package experiments

import (
	"fmt"

	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/traffic"
	"github.com/bigreddata/brace/internal/spatial"
)

// Table2 reproduces the traffic validation of Table 2: RMSPE of per-lane
// lane-change frequency, average density and average velocity between the
// hand-coded MITSIM simulator (nearest-neighbor perception) and the BRACE
// reimplementation (fixed lookahead ρ = 200), on a 20,000-unit segment.
func Table2(s Scale) (*Result, error) {
	length := 20000 * s.Factor
	if length < 1500 {
		length = 1500
	}
	p := traffic.DefaultParams(length)

	ticks := s.Ticks * 3
	window := ticks / 3

	mit := traffic.NewMITSIM(p, s.Seed)
	mit.RunTicks(s.WarmupTicks)
	ref, err := traffic.CollectMITSIM(mit, ticks, window)
	if err != nil {
		return nil, err
	}

	m := traffic.NewModel(p)
	eng, err := engine.NewSequential(m, m.NewPopulation(s.Seed), spatial.KindKDTree, s.Seed)
	if err != nil {
		return nil, err
	}
	if err := eng.RunTicks(s.WarmupTicks); err != nil {
		return nil, err
	}
	meas, err := traffic.CollectBRACE(eng, m, ticks, window)
	if err != nil {
		return nil, err
	}

	rows, err := traffic.Validate(ref, meas)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "Table 2",
		Title: "RMSPE for traffic simulation (lookahead = 200)",
		Rows:  rows,
		PaperClaim: "strong agreement on all statistics (velocity 0.007%, density 7-10%, " +
			"changes 6-9%) except lane 4's density/changes (20-21%) due to the right-lane " +
			"reluctance leaving few vehicles there",
		Notes: fmt.Sprintf("segment %.0f, %d ticks, window %d, same driver model on both sides; "+
			"deviation comes from fixed-ρ vs nearest-neighbor perception", length, ticks, window),
	}, nil
}
