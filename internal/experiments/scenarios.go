package experiments

import (
	"fmt"
	"strings"

	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/scenario"
	"github.com/bigreddata/brace/internal/spatial"
	"github.com/bigreddata/brace/internal/stats"
)

// sweepConfig sizes one scenario for the sweep. Traffic derives its
// population from segment length; everything else honors the agent count.
func sweepConfig(sp scenario.Spec, s Scale) scenario.Config {
	cfg := scenario.Config{Seed: s.Seed, Agents: int(3000 * s.Factor)}
	if cfg.Agents < 200 {
		cfg.Agents = 200
	}
	if sp.Name == "traffic" {
		cfg.Extent = 4000 * s.Factor
		if cfg.Extent < 1500 {
			cfg.Extent = 1500
		}
	}
	return cfg
}

// ScenarioSweep runs every registered scenario on the distributed engine
// across a worker sweep and reports virtual-time throughput — one labeled
// series per scenario. New workloads appear here (and in the benchmark
// sweep) the moment they register; no experiment code changes.
func ScenarioSweep(s Scale) (*Result, error) {
	workerSweep := []int{1, 2, 4, 8}
	cm := cluster.DefaultCostModel()
	var series []*stats.Series
	var sizes []string
	for _, sp := range scenario.All() {
		srs := &stats.Series{Label: sp.Name}
		cfg := sweepConfig(sp, s)
		for _, w := range workerSweep {
			m, pop, err := sp.New(cfg)
			if err != nil {
				return nil, err
			}
			if w == workerSweep[0] {
				sizes = append(sizes, fmt.Sprintf("%s=%d", sp.Name, len(pop)))
			}
			eng, err := engine.NewDistributed(m, pop, engine.Options{
				Workers:   w,
				Index:     spatial.KindKDTree,
				Seed:      s.Seed,
				CostModel: &cm,
			})
			if err != nil {
				return nil, err
			}
			if err := eng.RunTicks(s.Ticks); err != nil {
				return nil, err
			}
			srs.Add(float64(w), eng.ThroughputVirtual())
		}
		series = append(series, srs)
	}
	return &Result{
		ID:     "Scenario Sweep",
		Title:  "all registered scenarios: throughput vs slave nodes",
		XName:  "# workers",
		Series: series,
		PaperClaim: "beyond the paper: the registry generalizes its three workloads — every " +
			"registered scenario runs on the same engine and scales with workers",
		Notes: fmt.Sprintf("initial agents: %s; %d ticks, virtual-time throughput",
			strings.Join(sizes, " "), s.Ticks),
	}, nil
}
