package brace

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (each wraps the corresponding experiment runner at
// reduced scale), plus engine micro-benchmarks. Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// The full-scale experiment sweeps (paper problem sizes) run via
// cmd/experiments -full.

import (
	"net"
	"testing"

	"github.com/bigreddata/brace/internal/distrib"
	"github.com/bigreddata/brace/internal/experiments"
)

func benchScale() experiments.Scale {
	return experiments.Scale{Factor: 0.06, Ticks: 10, WarmupTicks: 2, Seed: 42}
}

func runExperiment(b *testing.B, f func(experiments.Scale) (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if r == nil {
			b.Fatal("nil result")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (traffic validation RMSPE).
func BenchmarkTable2(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkFig3 regenerates Figure 3 (traffic: indexing vs segment length).
func BenchmarkFig3(b *testing.B) { runExperiment(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (fish: indexing vs visibility).
func BenchmarkFig4(b *testing.B) { runExperiment(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Figure 5 (predator: effect inversion).
func BenchmarkFig5(b *testing.B) { runExperiment(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Figure 6 (traffic scale-up).
func BenchmarkFig6(b *testing.B) { runExperiment(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Figure 7 (fish scale-up, LB on/off).
func BenchmarkFig7(b *testing.B) { runExperiment(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Figure 8 (fish epoch time, LB on/off).
func BenchmarkFig8(b *testing.B) { runExperiment(b, experiments.Fig8) }

// ---- Registry-driven scenario sweep ----

// BenchmarkScenario runs every registered scenario as a sub-benchmark
// (BenchmarkScenario/<name>), so new workloads get throughput numbers the
// moment they register. Each measures single-tick cost on the sequential
// engine (KD index) at a fixed population, reporting agent-ticks/s; see
// README.md for the recorded baseline.
func BenchmarkScenario(b *testing.B) {
	for _, sp := range Scenarios() {
		sp := sp
		b.Run(sp.Name, func(b *testing.B) {
			cfg := ScenarioConfig{Agents: 2000, Seed: 1}
			if sp.Name == "traffic" {
				cfg.Extent = 8000 // ≈ 512 vehicles at default density
			}
			build := func() *Simulation {
				m, pop, err := sp.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sim, err := New(m, pop, Config{Sequential: true, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				return sim
			}
			sim := build()
			n0 := len(sim.Agents())
			var done int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Draining scenarios (evacuate) would converge to an empty
				// world over b.N ticks; restart once half the population is
				// gone so the measured tick stays representative.
				if i%32 == 0 {
					b.StopTimer()
					if len(sim.Agents())*2 < n0 {
						done += sim.Metrics().AgentTicks
						sim = build()
					}
					b.StartTimer()
				}
				if err := sim.Run(1); err != nil {
					b.Fatal(err)
				}
			}
			done += sim.Metrics().AgentTicks
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "agent-ticks/s")
		})
	}
}

// ---- Engine micro-benchmarks ----

// BenchmarkFishTickSequential measures raw single-node tick cost of the
// fish model with the KD-tree index and the default Verlet query cache.
func BenchmarkFishTickSequential(b *testing.B) {
	m := NewFishModel(DefaultFishParams())
	sim, err := New(m, m.NewPopulation(2000, 1), Config{Sequential: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Metrics().AgentTicks)/b.Elapsed().Seconds(), "agent-ticks/s")
}

// BenchmarkFishTickSequentialUncached is the same workload with the query
// cache disabled — the per-tick-rebuild baseline the cached path is
// measured against (the README's before/after pair).
func BenchmarkFishTickSequentialUncached(b *testing.B) {
	m := NewFishModel(DefaultFishParams())
	sim, err := New(m, m.NewPopulation(2000, 1), Config{Sequential: true, Seed: 1, CacheSkin: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Metrics().AgentTicks)/b.Elapsed().Seconds(), "agent-ticks/s")
}

// BenchmarkFishTickDistributed8 measures the distributed engine with 8
// workers on the same workload.
func BenchmarkFishTickDistributed8(b *testing.B) {
	m := NewFishModel(DefaultFishParams())
	sim, err := New(m, m.NewPopulation(2000, 1), Config{Workers: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Metrics().AgentTicks)/b.Elapsed().Seconds(), "agent-ticks/s")
}

// BenchmarkTrafficTickIndexed measures the traffic model (KD index) on a
// segment past the index crossover (cf. Fig. 3).
func BenchmarkTrafficTickIndexed(b *testing.B) {
	m := NewTrafficModel(DefaultTrafficParams(16000))
	sim, err := New(m, m.NewPopulation(1), Config{Sequential: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficTickScan measures the same workload with indexing off —
// the Fig. 3 contrast in microcosm.
func BenchmarkTrafficTickScan(b *testing.B) {
	m := NewTrafficModel(DefaultTrafficParams(16000))
	sim, err := New(m, m.NewPopulation(1), Config{Sequential: true, Index: IndexScan, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMITSIMTick measures the hand-coded comparator.
func BenchmarkMITSIMTick(b *testing.B) {
	mit := NewMITSIM(DefaultTrafficParams(16000), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mit.RunTicks(1)
	}
}

// BenchmarkBRASILCompile measures compiler throughput.
func BenchmarkBRASILCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompileBRASIL(quickFishSrc, CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBRASILQueryOverhead compares a compiled script tick against the
// hand-coded fish model tick (the §5.2 parity claim in microcosm).
func BenchmarkBRASILQueryOverhead(b *testing.B) {
	prog, err := CompileBRASIL(quickFishSrc, CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(prog, SeedPopulation(prog.Schema(), 1000, 1, 200), Config{Sequential: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredatorNonLocalVsInverted reports the two dataflow variants
// back to back (Fig. 5's mechanism at micro scale).
func BenchmarkPredatorNonLocal(b *testing.B) {
	m := NewPredatorModel(DefaultPredatorParams(), false)
	sim, err := New(m, m.NewPopulation(1500, 1), Config{Workers: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredatorInverted(b *testing.B) {
	m := NewPredatorModel(DefaultPredatorParams(), true)
	sim, err := New(m, m.NewPopulation(1500, 1), Config{Workers: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Distributed data-plane benchmarks ----

// startBenchWorkers launches n multi-session worker daemons on loopback
// for the distributed benchmarks (mesh runs dial peer links, so the
// daemons must serve concurrent connections).
func startBenchWorkers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr().String()
		go distrib.ServeWith(lis, distrib.ServeOptions{})
	}
	return addrs
}

// BenchmarkDistribFish8w measures coordinator-visible throughput of the
// fish workload distributed over real loopback sockets, 8 partitions on 2
// worker daemons — once with the star data plane (neighbor envelopes
// relayed through the coordinator) and once with the peer mesh carrying
// them directly. The pair is the PR's ablation: same run, same wire
// format, only the envelope path differs.
func BenchmarkDistribFish8w(b *testing.B) {
	for _, mode := range []struct {
		name string
		mesh bool
	}{{"star", false}, {"mesh", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			addrs := startBenchWorkers(b, 2)
			const ticks = 10
			var agentTicks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := distrib.Run(distrib.Options{
					Addrs:    addrs,
					Scenario: "fish",
					Agents:   2000, Seed: 1,
					Partitions: 8, Ticks: ticks,
					Tunables: distrib.Tunables{Mesh: mode.mesh},
				})
				if err != nil {
					b.Fatal(err)
				}
				agentTicks += int64(len(res.Agents)) * ticks
			}
			b.ReportMetric(float64(agentTicks)/b.Elapsed().Seconds(), "agent-ticks/s")
		})
	}
}
