module github.com/bigreddata/brace

go 1.21
