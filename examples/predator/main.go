// Predator example: the paper's non-local-effect workload. A fish bites
// every weaker fish in range ("hurt" effects assigned to the victim), so
// the engine needs the map-reduce-reduce dataflow — unless the script is
// effect-inverted, in which case victims collect their own bites and one
// reduce pass suffices (Theorem 2 / Figure 5).
//
// This example runs both variants on the same population, shows they
// agree, and compares their virtual-time cost.
package main

import (
	"fmt"
	"log"

	"github.com/bigreddata/brace"
)

func main() {
	const (
		n     = 4000
		ticks = 60
		seed  = 5
	)
	type outcome struct {
		name   string
		agents int
		vsec   float64
		tput   float64
	}
	var outcomes []outcome
	for _, inverted := range []bool{false, true} {
		m := brace.NewPredatorModel(brace.DefaultPredatorParams(), inverted)
		sim, err := brace.New(m, m.NewPopulation(n, seed), brace.Config{
			Workers:     8,
			Seed:        seed,
			VirtualTime: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(ticks); err != nil {
			log.Fatal(err)
		}
		mt := sim.Metrics()
		name := "non-local (2 reduce passes)"
		if inverted {
			name = "inverted  (1 reduce pass) "
		}
		outcomes = append(outcomes, outcome{name, mt.Agents, mt.VirtualSeconds, mt.ThroughputVirtual})
	}

	fmt.Printf("predator simulation: %d fish, %d ticks, 8 workers\n\n", n, ticks)
	for _, o := range outcomes {
		fmt.Printf("%s  survivors=%4d  virtual=%.4fs  throughput=%.3g agent-ticks/s\n",
			o.name, o.agents, o.vsec, o.tput)
	}
	fmt.Printf("\ninversion speedup: %.1f%%  (the Fig. 5 effect)\n",
		100*(outcomes[1].tput/outcomes[0].tput-1))
	fmt.Println("note: population sizes agree up to floating-point reassociation of ⊕;")
	fmt.Println("on the sequential engine the two variants agree bit-for-bit (see tests).")
}
