// Fish school example: the Couzin model with two classes of informed
// individuals pulling the school apart — the workload behind Figures 7–8.
// Watch the load balancer keep the partition loads flat while the school
// splits; run with -lb=false to watch two workers end up with everything.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bigreddata/brace"
)

func main() {
	lb := flag.Bool("lb", true, "enable the 1-D load balancer")
	fishN := flag.Int("n", 2000, "number of fish")
	ticks := flag.Int("ticks", 120, "ticks to simulate")
	flag.Parse()

	p := brace.DefaultFishParams()
	p.InformedFrac = 0.2 // two informed classes, preferred directions ±x
	p.Omega = 0.8
	m := brace.NewFishModel(p)

	sim, err := brace.New(m, m.NewPopulation(*fishN, 3), brace.Config{
		Workers:     8,
		Seed:        3,
		LoadBalance: *lb,
		VirtualTime: true,
		EpochTicks:  10,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(*ticks); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fish school, %d fish, 8 workers, load balancing %v\n", *fishN, *lb)
	fmt.Println(sim.Metrics())

	fmt.Println("\nepoch  virtual-sec  imbalance  rebalanced")
	for i, ep := range sim.EpochStats() {
		fmt.Printf("%5d  %11.5f  %9.2f  %v\n", i+1, ep.VirtualSec, ep.Imbalance, ep.Rebalanced)
	}

	var left, right int
	s := m.Schema()
	for _, a := range sim.Agents() {
		if a.Pos(s).X < 0 {
			left++
		} else {
			right++
		}
	}
	fmt.Printf("\nfinal split: %d fish west of origin, %d east (two schools)\n", left, right)
}
