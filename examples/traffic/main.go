// Traffic example: run the MITSIM-derived driving model on BRACE and
// validate it against the hand-coded single-node simulator, reproducing a
// miniature Table 2 (RMSPE of per-lane statistics).
package main

import (
	"fmt"
	"log"

	"github.com/bigreddata/brace"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/sim/traffic"
	"github.com/bigreddata/brace/internal/spatial"
)

func main() {
	const seed = 11
	p := brace.DefaultTrafficParams(8000) // 8 km, 4 lanes
	fmt.Printf("segment %.0f m, %d lanes, %d vehicles, lookahead %.0f\n",
		p.Length, p.Lanes, p.Vehicles(), p.Lookahead)

	// Side A: the hand-coded nearest-neighbor simulator.
	mit := traffic.NewMITSIM(p, seed)
	ref, err := traffic.CollectMITSIM(mit, 90, 30)
	if err != nil {
		log.Fatal(err)
	}

	// Side B: the same model on BRACE with fixed-ρ spatial indexing.
	m := traffic.NewModel(p)
	eng, err := engine.NewSequential(m, m.NewPopulation(seed), spatial.KindKDTree, seed)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := traffic.CollectBRACE(eng, m, 90, 30)
	if err != nil {
		log.Fatal(err)
	}

	rows, err := traffic.Validate(ref, meas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRMSPE between MITSIM and BRACE (Table 2 style):")
	fmt.Printf("%-6s %16s %14s %14s\n", "Lane", "ChangeFreq", "AvgDensity", "AvgVelocity")
	for _, r := range rows {
		fmt.Printf("L%-5d %15.1f%% %13.1f%% %13.3f%%\n",
			r.Lane, r.ChangeFreq*100, r.Density*100, r.MeanV*100)
	}
	fmt.Println("\nexpect: tight velocity agreement everywhere; the right-most lane")
	fmt.Println("is sparsest (driver reluctance), so its ratios wobble the most.")
}
