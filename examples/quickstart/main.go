// Quickstart: compile the paper's Fig. 2 fish script with BRASIL, run it
// distributed across four simulated workers, and watch the repulsion
// forces spread the school out.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/bigreddata/brace"
)

// The simple fish behavior of Fig. 2: every fish repels every visible
// fish with a force inversely proportional to their distance.
const fishSrc = `
class Fish {
  public state float x : x + vx; #range[-5,5];
  public state float y : y + vy; #range[-5,5];
  public state float vx : 0.5 * vx + avoidx / max(count, 1);
  public state float vy : 0.5 * vy + avoidy / max(count, 1);
  private effect float avoidx : sum;
  private effect float avoidy : sum;
  private effect int count : sum;

  public void run() {
    foreach (Fish p : Extent<Fish>) {
      if (p != this) {
        avoidx <- (x - p.x) / (dist(this, p) + 0.01);
        avoidy <- (y - p.y) / (dist(this, p) + 0.01);
        count <- 1;
      }
    }
  }
}
`

func main() {
	prog, err := brace.CompileBRASIL(fishSrc, brace.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled class %s (visibility %g, reach %g)\n",
		prog.Schema().Name, prog.Schema().Visibility, prog.Schema().Reach)

	// 500 fish crowded into a 20x20 box.
	pop := brace.SeedPopulation(prog.Schema(), 500, 7, 20)

	sim, err := brace.New(prog, pop, brace.Config{Workers: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tick %3d: spread %.1f\n", 0, spread(sim, prog.Schema()))
	for i := 0; i < 5; i++ {
		if err := sim.Run(20); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tick %3d: spread %.1f\n", sim.Tick(), spread(sim, prog.Schema()))
	}
	fmt.Println(sim.Metrics())
}

// spread returns the root-mean-square distance from the school's center.
func spread(sim *brace.Simulation, s *brace.Schema) float64 {
	agents := sim.Agents()
	var cx, cy float64
	for _, a := range agents {
		p := a.Pos(s)
		cx += p.X
		cy += p.Y
	}
	n := float64(len(agents))
	cx /= n
	cy /= n
	var sum float64
	for _, a := range agents {
		p := a.Pos(s)
		sum += (p.X-cx)*(p.X-cx) + (p.Y-cy)*(p.Y-cy)
	}
	return math.Sqrt(sum / n)
}
