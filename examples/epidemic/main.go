// Epidemic example: a spatial SIR model in the state-effect pattern.
// Infection pressure is a *local* effect field — each susceptible sums a
// distance-weighted exposure from the infected agents in its visible
// region, then converts it into an infection probability in its update
// phase — so the simulation runs bit-identically on the sequential and
// distributed engines.
//
// This example runs the epidemic on 8 workers and prints the S/I/R wave
// as it travels outward from the seeded cluster.
package main

import (
	"fmt"
	"log"

	"github.com/bigreddata/brace"
)

func main() {
	const (
		n     = 4000
		ticks = 120
		seed  = 11
	)
	m := brace.NewEpidemicModel(brace.DefaultEpidemicParams())
	sim, err := brace.New(m, m.NewPopulation(n, seed), brace.Config{
		Workers: 8,
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SIR epidemic: %d agents, %d ticks, 8 workers\n\n", n, ticks)
	fmt.Printf("%6s %14s %12s %12s\n", "tick", "susceptible", "infected", "recovered")
	const step = 20
	for t := 0; t <= ticks; t += step {
		if t > 0 {
			if err := sim.Run(step); err != nil {
				log.Fatal(err)
			}
		}
		s, i, r := m.Counts(sim.Agents())
		fmt.Printf("%6d %14d %12d %12d\n", t, s, i, r)
	}
	fmt.Printf("\n%v\n", sim.Metrics())
	fmt.Println("note: all effect assignments are local, so this run is bit-identical")
	fmt.Println("to the sequential reference engine at any worker count (see tests).")
}
