// Evacuation example: a crowd leaves a two-exit room under social-force
// repulsion plus exit seeking, both expressed in the state-effect
// pattern with local-only effect assignments. Evacuated agents are
// removed from the simulation, so the population drains — and because
// kills are deterministic, the drain curve is identical on the
// sequential and distributed engines.
//
// This example also shows the registry path: the scenario is resolved by
// name through brace.NewScenario rather than a model constructor.
package main

import (
	"fmt"
	"log"

	"github.com/bigreddata/brace"
)

func main() {
	const (
		n    = 2000
		seed = 23
	)
	sim, err := brace.NewScenario("evacuate",
		brace.ScenarioConfig{Agents: n, Seed: seed},
		brace.Config{Workers: 8, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evacuation: %d pedestrians, two exits, 8 workers\n\n", n)
	fmt.Printf("%6s %12s %12s\n", "tick", "remaining", "evacuated")
	const step = 10
	remaining := n
	for t := 0; remaining > 0 && t <= 400; t += step {
		if t > 0 {
			if err := sim.Run(step); err != nil {
				log.Fatal(err)
			}
			remaining = len(sim.Agents())
		}
		fmt.Printf("%6d %12d %12d\n", t, remaining, n-remaining)
	}
	fmt.Printf("\n%v\n", sim.Metrics())
}
