package brace

import (
	"strings"
	"testing"
)

const quickFishSrc = `
class Fish {
  public state float x : x + vx; #range[-5,5];
  public state float y : y + vy; #range[-5,5];
  public state float vx : 0.5 * vx + avoidx / max(count, 1);
  public state float vy : 0.5 * vy + avoidy / max(count, 1);
  private effect float avoidx : sum;
  private effect float avoidy : sum;
  private effect int count : sum;
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      if (p != this) {
        avoidx <- (x - p.x) / (dist(this, p) + 0.01);
        avoidy <- (y - p.y) / (dist(this, p) + 0.01);
        count <- 1;
      }
    }
  }
}
`

func TestPublicAPIBRASILRoundTrip(t *testing.T) {
	prog, err := CompileBRASIL(quickFishSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pop := SeedPopulation(prog.Schema(), 50, 1, 30)
	sim, err := New(prog, pop, Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	if m.Ticks != 10 || m.Agents != 50 || m.AgentTicks != 500 {
		t.Errorf("metrics = %+v", m)
	}
	if m.CandidatesSeen == 0 || m.WallSeconds <= 0 {
		t.Errorf("work counters empty: %+v", m)
	}
	if !strings.Contains(m.String(), "agent-ticks") {
		t.Error("Metrics.String format")
	}
}

func TestPublicAPISequentialMatchesDistributed(t *testing.T) {
	prog, err := CompileBRASIL(quickFishSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sequential bool, workers int) []*Agent {
		pop := SeedPopulation(prog.Schema(), 40, 2, 25)
		sim, err := New(prog, pop, Config{Workers: workers, Seed: 9, Sequential: sequential})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(8); err != nil {
			t.Fatal(err)
		}
		return sim.Agents()
	}
	a := mk(true, 0)
	b := mk(false, 5)
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("agent %d diverged across engines", a[i].ID)
		}
	}
}

func TestPublicAPIGoModel(t *testing.T) {
	m := NewFishModel(DefaultFishParams())
	pop := m.NewPopulation(80, 3)
	sim, err := New(m, pop, Config{Workers: 3, Seed: 3, VirtualTime: true, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(12); err != nil {
		t.Fatal(err)
	}
	mt := sim.Metrics()
	if mt.VirtualSeconds <= 0 || mt.ThroughputVirtual <= 0 {
		t.Errorf("virtual accounting missing: %+v", mt)
	}
	if mt.LocalBytes == 0 {
		t.Error("no collocated traffic metered")
	}
}

func TestPublicAPIPredatorVariants(t *testing.T) {
	for _, inverted := range []bool{false, true} {
		m := NewPredatorModel(DefaultPredatorParams(), inverted)
		sim, err := New(m, m.NewPopulation(60, 4), Config{Workers: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(5); err != nil {
			t.Fatal(err)
		}
		if len(sim.Agents()) == 0 {
			t.Error("population vanished")
		}
	}
}

func TestPublicAPITrafficAndMITSIM(t *testing.T) {
	p := DefaultTrafficParams(2000)
	tm := NewTrafficModel(p)
	sim, err := New(tm, tm.NewPopulation(5), Config{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	mit := NewMITSIM(p, 5)
	mit.RunTicks(5)
	if mit.Cars() == 0 || len(sim.Agents()) == 0 {
		t.Error("traffic sims empty")
	}
}

func TestTwoDPartitionConfig(t *testing.T) {
	m := NewFishModel(DefaultFishParams())
	pop := m.NewPopulation(60, 8)
	ref := make([]*Agent, len(pop))
	for i, a := range pop {
		ref[i] = a.Clone()
	}
	twoD, err := New(m, pop, Config{Workers: 4, Seed: 8, TwoDPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	strips, err := New(m, ref, Config{Workers: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := twoD.Run(8); err != nil {
		t.Fatal(err)
	}
	if err := strips.Run(8); err != nil {
		t.Fatal(err)
	}
	a, b := twoD.Agents(), strips.Agents()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("partitioning changed semantics at agent %d", a[i].ID)
		}
	}
	// LB + 2-D partitioning is rejected.
	if _, err := New(m, m.NewPopulation(10, 9), Config{
		Workers: 2, TwoDPartition: true, LoadBalance: true,
	}); err == nil {
		t.Error("LB over 2-D partitioning accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	m := NewFishModel(DefaultFishParams())
	sim, err := New(m, m.NewPopulation(10, 6), Config{}) // zero config
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	if sim.Tick() != 2 {
		t.Error("Tick")
	}
}
