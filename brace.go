// Package brace is BRACE — the Big Red Agent-based Computation Engine — a
// Go reproduction of "Behavioral Simulations in MapReduce" (Wang et al.,
// VLDB 2010).
//
// BRACE treats a behavioral (agent-based) simulation as an iterated
// spatial join and executes it on a shared-nothing, main-memory MapReduce
// runtime: every tick, each agent's *query phase* joins it with the agents
// in its visible region (reducers over spatially partitioned, replicated
// data), and its *update phase* advances its own state (collocated map
// tasks). Effect fields with commutative combinators make the query phase
// order-independent, so the same simulation runs bit-identically on one
// worker or many.
//
// Two ways to define behavior:
//
//   - implement Model in Go (see the models returned by NewFishModel,
//     NewTrafficModel, NewPredatorModel), or
//   - write a BRASIL script and CompileBRASIL it; the compiler enforces
//     the state-effect pattern and applies automatic index selection and
//     effect inversion.
//
// Quickstart:
//
//	model, _ := brace.CompileBRASIL(src, brace.CompileOptions{})
//	pop := brace.SeedPopulation(model.Schema(), 1000, seed, area)
//	sim, _ := brace.New(model, pop, brace.Config{Workers: 8})
//	_ = sim.Run(1000)
//	fmt.Println(sim.Metrics())
package brace

import (
	"fmt"

	"github.com/bigreddata/brace/internal/agent"
	"github.com/bigreddata/brace/internal/brasil"
	"github.com/bigreddata/brace/internal/cluster"
	"github.com/bigreddata/brace/internal/engine"
	"github.com/bigreddata/brace/internal/geom"
	"github.com/bigreddata/brace/internal/partition"
	"github.com/bigreddata/brace/internal/spatial"
)

// Re-exported core types; see the respective internal packages for full
// documentation.
type (
	// Agent is one simulated individual: ⟨oid, state, effects⟩.
	Agent = agent.Agent
	// ID identifies an agent for its lifetime.
	ID = agent.ID
	// Schema declares an agent class's state/effect fields and spatial
	// constraints.
	Schema = agent.Schema
	// Combinator folds effect assignments (commutative + associative).
	Combinator = agent.Combinator
	// Model is agent behavior under the state-effect pattern.
	Model = engine.Model
	// Env is the query phase's view of the visible region.
	Env = engine.Env
	// UpdateCtx carries update-phase randomness and lifecycle operations.
	UpdateCtx = engine.UpdateCtx
	// Vec is a 2-D point.
	Vec = geom.Vec
	// CompileOptions selects BRASIL optimizer passes.
	CompileOptions = brasil.CompileOptions
	// Program is a compiled BRASIL script (implements Model).
	Program = brasil.Program
)

// Builtin effect combinators.
var (
	Sum = agent.Sum
	Min = agent.Min
	Max = agent.Max
	Mul = agent.Mul
	Or  = agent.Or
	And = agent.And
)

// NewSchema starts declaring an agent class.
func NewSchema(name string) *Schema { return agent.NewSchema(name) }

// NewAgent allocates an agent of the given schema.
func NewAgent(s *Schema, id ID) *Agent { return agent.New(s, id) }

// V constructs a Vec.
func V(x, y float64) Vec { return geom.V(x, y) }

// IndexKind selects the reducer-side spatial index.
type IndexKind int

const (
	// IndexKD is the default KD-tree index (the paper's choice).
	IndexKD IndexKind = iota
	// IndexScan disables indexing (the "no indexing" baselines).
	IndexScan
	// IndexGrid uses a uniform bucket grid.
	IndexGrid
)

func (k IndexKind) spatial() spatial.Kind {
	switch k {
	case IndexScan:
		return spatial.KindScan
	case IndexGrid:
		return spatial.KindGrid
	default:
		return spatial.KindKDTree
	}
}

// ParseIndex resolves an index name ("kd", "scan", "grid"; "" defaults to
// kd) through the engine's single index vocabulary.
func ParseIndex(name string) (IndexKind, error) {
	k, err := spatial.ParseKind(name)
	if err != nil {
		return 0, err
	}
	switch k {
	case spatial.KindScan:
		return IndexScan, nil
	case spatial.KindGrid:
		return IndexGrid, nil
	default:
		return IndexKD, nil
	}
}

// Config tunes a Simulation.
type Config struct {
	// Workers is the number of simulated worker nodes (≥1). Zero means 1.
	Workers int
	// Index selects the spatial index (default KD-tree).
	Index IndexKind
	// Seed drives all simulation randomness.
	Seed uint64
	// EpochTicks is the master coordination interval (default 10).
	EpochTicks int
	// Checkpoint enables coordinated checkpoints every N epochs (0 off).
	Checkpoint int
	// LoadBalance enables the 1-D load balancer at epoch boundaries
	// (strip partitioning only).
	LoadBalance bool
	// TwoDPartition partitions space by 2-D median splits (App. A's
	// quadtree-style alternative) computed from the initial population,
	// instead of 1-D strips. Incompatible with LoadBalance.
	TwoDPartition bool
	// VirtualTime enables the calibrated cluster cost model, making
	// Metrics report virtual-time throughput alongside wall time.
	VirtualTime bool
	// Sequential uses the single-loop reference engine instead of the
	// distributed runtime (Workers is then ignored).
	Sequential bool
	// CacheSkin tunes the Verlet query cache (KD-tree index with bounded
	// visibility only): 0 selects the default skin, a negative value
	// disables the cached query path, a positive value is the skin
	// radius. The cache is semantics-preserving: results are
	// bit-identical with it on or off.
	CacheSkin float64
}

// Simulation is a running BRACE simulation over either engine.
type Simulation struct {
	dist *engine.Distributed
	seq  *engine.Sequential
}

// New builds a simulation with the given model and initial population.
func New(m Model, pop []*Agent, cfg Config) (*Simulation, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Sequential {
		seq, err := engine.NewSequentialCache(m, pop, cfg.Index.spatial(), cfg.Seed, cfg.CacheSkin)
		if err != nil {
			return nil, err
		}
		return &Simulation{seq: seq}, nil
	}
	opts := engine.Options{
		Workers: cfg.Workers,
		Index:   cfg.Index.spatial(),
		Seed:    cfg.Seed,
		Tunables: cluster.Tunables{
			EpochTicks:            cfg.EpochTicks,
			CheckpointEveryEpochs: cfg.Checkpoint,
			CacheSkin:             cfg.CacheSkin,
		},
		LoadBalance: cfg.LoadBalance,
	}
	if cfg.TwoDPartition {
		s := m.Schema()
		pts := make([]geom.Vec, len(pop))
		for i, a := range pop {
			pts[i] = a.Pos(s)
		}
		opts.InitialPartition = partition.NewKD2D(pts, cfg.Workers)
	}
	if cfg.VirtualTime {
		cm := cluster.DefaultCostModel()
		opts.CostModel = &cm
	}
	dist, err := engine.NewDistributed(m, pop, opts)
	if err != nil {
		return nil, err
	}
	return &Simulation{dist: dist}, nil
}

// Run advances the simulation n full ticks (query + update each).
func (s *Simulation) Run(n int) error {
	if s.seq != nil {
		return s.seq.RunTicks(n)
	}
	return s.dist.RunTicks(n)
}

// Agents returns the live population, sorted by ID.
func (s *Simulation) Agents() []*Agent {
	if s.seq != nil {
		return s.seq.Agents()
	}
	return s.dist.Agents()
}

// Tick returns completed ticks.
func (s *Simulation) Tick() uint64 {
	if s.seq != nil {
		return s.seq.Tick()
	}
	return s.dist.Tick()
}

// Metrics summarizes a run.
type Metrics struct {
	Ticks          uint64
	Agents         int
	AgentTicks     int64
	CandidatesSeen int64
	WallSeconds    float64
	// VirtualSeconds and ThroughputVirtual are zero unless VirtualTime
	// accounting is enabled.
	VirtualSeconds    float64
	ThroughputWall    float64
	ThroughputVirtual float64
	// NetworkBytes / LocalBytes meter the simulated cluster traffic
	// (distributed engine only).
	NetworkBytes int64
	LocalBytes   int64
	// CacheBuilds / CacheReuses split query-phase ticks into full index
	// rebuilds and Verlet-list reuse hits (zero when the cached path is
	// off) — the knob for reasoning about §5.2-style indexing cost.
	CacheBuilds int64
	CacheReuses int64
}

// Metrics reports run statistics.
func (s *Simulation) Metrics() Metrics {
	if s.seq != nil {
		cs := s.seq.CacheStats()
		return Metrics{
			Ticks:          s.seq.Tick(),
			Agents:         len(s.seq.Agents()),
			AgentTicks:     s.seq.AgentTicks(),
			CandidatesSeen: s.seq.Visited(),
			WallSeconds:    s.seq.WallSeconds(),
			ThroughputWall: s.seq.ThroughputWall(),
			CacheBuilds:    cs.Builds,
			CacheReuses:    cs.Reuses,
		}
	}
	t := s.dist.Runtime().Transport().Metrics().Totals()
	cs := s.dist.CacheStats()
	return Metrics{
		Ticks:             s.dist.Tick(),
		Agents:            len(s.dist.Agents()),
		AgentTicks:        s.dist.AgentTicks(),
		CandidatesSeen:    s.dist.Visited(),
		WallSeconds:       s.dist.WallSeconds(),
		VirtualSeconds:    s.dist.VirtualSeconds(),
		ThroughputWall:    s.dist.ThroughputWall(),
		ThroughputVirtual: s.dist.ThroughputVirtual(),
		NetworkBytes:      t.SentBytes,
		LocalBytes:        t.LocalBytes,
		CacheBuilds:       cs.Builds,
		CacheReuses:       cs.Reuses,
	}
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	s := fmt.Sprintf("ticks=%d agents=%d agent-ticks=%d wall=%.3fs tput=%.3g at/s",
		m.Ticks, m.Agents, m.AgentTicks, m.WallSeconds, m.ThroughputWall)
	if m.VirtualSeconds > 0 {
		s += fmt.Sprintf(" virtual=%.3fs vtput=%.3g at/s", m.VirtualSeconds, m.ThroughputVirtual)
	}
	if m.NetworkBytes > 0 || m.LocalBytes > 0 {
		s += fmt.Sprintf(" net=%dB local=%dB", m.NetworkBytes, m.LocalBytes)
	}
	if m.CacheBuilds > 0 || m.CacheReuses > 0 {
		s += fmt.Sprintf(" qcache=%d builds/%d reuses", m.CacheBuilds, m.CacheReuses)
	}
	return s
}

// EpochStat is one epoch's record from the distributed engine: virtual
// time consumed, per-worker owned-agent counts, load imbalance (max/mean)
// and whether the load balancer repartitioned.
type EpochStat = engine.EpochStat

// EpochStats returns per-epoch statistics (distributed engine only; nil
// for the sequential engine).
func (s *Simulation) EpochStats() []EpochStat {
	if s.dist == nil {
		return nil
	}
	return s.dist.Epochs()
}

// CompileBRASIL compiles a BRASIL script into a Model.
func CompileBRASIL(src string, opt CompileOptions) (*Program, error) {
	return brasil.Compile(src, opt)
}

// SeedPopulation scatters n agents of the given schema uniformly over the
// rectangle [0,span]×[0,span] with zeroed non-position state — a
// convenience for quickstarts; real workloads build their own populations.
func SeedPopulation(s *Schema, n int, seed uint64, span float64) []*Agent {
	pop := make([]*Agent, n)
	for i := range pop {
		id := agent.ID(i + 1)
		rng := agent.NewRNG(seed, 0, id)
		a := agent.New(s, id)
		a.SetPos(s, geom.V(rng.Float64()*span, rng.Float64()*span))
		pop[i] = a
	}
	return pop
}
